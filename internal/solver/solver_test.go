package solver

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"greenhetero/internal/server"
	"greenhetero/internal/workload"
)

// truthModel builds a GroupModel from the ground-truth response surface.
func truthModel(t testing.TB, serverID, workloadID string, count int) GroupModel {
	t.Helper()
	s, err := server.Lookup(serverID)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Lookup(workloadID)
	if err != nil {
		t.Fatal(err)
	}
	return GroupModel{
		Count:    count,
		IdleW:    s.IdleW,
		PeakEffW: workload.PeakEffW(s, w),
		Perf:     func(p float64) float64 { return workload.Perf(s, w, p) },
	}
}

func TestOptimizeValidation(t *testing.T) {
	good := truthModel(t, server.XeonE52620, workload.SPECjbb, 1)
	tests := []struct {
		name    string
		models  []GroupModel
		supply  float64
		wantErr error
	}{
		{"no groups", nil, 100, ErrNoGroups},
		{"four groups", []GroupModel{good, good, good, good}, 100, ErrTooManyGroups},
		{"zero supply", []GroupModel{good}, 0, ErrBadSupply},
		{"zero count", []GroupModel{{Count: 0, IdleW: 10, PeakEffW: 20, Perf: good.Perf}}, 100, ErrBadModel},
		{"nil perf", []GroupModel{{Count: 1, IdleW: 10, PeakEffW: 20}}, 100, ErrBadModel},
		{"inverted range", []GroupModel{{Count: 1, IdleW: 30, PeakEffW: 20, Perf: good.Perf}}, 100, ErrBadModel},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Optimize(tt.models, tt.supply, Options{}); !errors.Is(err, tt.wantErr) {
				t.Errorf("err = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestCaseStudyOptimum(t *testing.T) {
	// §III-B: E5-2620 + i5-4460, SPECjbb, 220 W. The paper finds the
	// optimum near PAR ≈ 65 % to the Xeon, beating uniform by ≈1.5×.
	models := []GroupModel{
		truthModel(t, server.XeonE52620, workload.SPECjbb, 1),
		truthModel(t, server.CoreI54460, workload.SPECjbb, 1),
	}
	res, err := Optimize(models, 220, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par := res.Fractions[0]
	if par < 0.60 || par > 0.72 {
		t.Errorf("optimal PAR = %v, want ≈ 0.65", par)
	}
	// Compare against uniform 50/50 on the truth.
	uniformPerf := models[0].Perf(110) + models[1].Perf(110)
	if gain := res.PredictedPerf / uniformPerf; gain < 1.3 || gain > 1.8 {
		t.Errorf("gain over uniform = %v, want ≈ 1.5", gain)
	}
}

func TestTrimSurplus(t *testing.T) {
	// Abundant supply: groups can't consume it all; the trimmed
	// fractions must sum below 1, freeing the rest for the battery.
	models := []GroupModel{
		truthModel(t, server.XeonE52620, workload.SPECjbb, 1),
		truthModel(t, server.CoreI54460, workload.SPECjbb, 1),
	}
	res, err := Optimize(models, 1000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i, f := range res.Fractions {
		maxUseful := float64(models[i].Count) * models[i].PeakEffW / 1000
		if f > maxUseful+1e-9 {
			t.Errorf("group %d fraction %v exceeds useful %v", i, f, maxUseful)
		}
		sum += f
	}
	if sum > 0.5 {
		t.Errorf("fractions sum %v; most of 1000 W should be left for the battery", sum)
	}
	// Both groups saturated → predicted perf equals sum of maxima.
	s1, err := server.Lookup(server.XeonE52620)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := server.Lookup(server.CoreI54460)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Lookup(workload.SPECjbb)
	if err != nil {
		t.Fatal(err)
	}
	want := workload.PerfMax(s1, w) + workload.PerfMax(s2, w)
	if math.Abs(res.PredictedPerf-want)/want > 0.01 {
		t.Errorf("predicted perf %v, want saturated %v", res.PredictedPerf, want)
	}
}

func TestStarvationBetterThanSpreading(t *testing.T) {
	// Supply so scarce that powering both groups leaves each below
	// idle: the solver must shut one out rather than waste everything.
	models := []GroupModel{
		truthModel(t, server.XeonE52620, workload.SPECjbb, 1), // idle 88
		truthModel(t, server.CoreI54460, workload.SPECjbb, 1), // idle 47
	}
	res, err := Optimize(models, 90, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PredictedPerf <= 0 {
		t.Fatalf("perf = %v; solver wasted all 90 W", res.PredictedPerf)
	}
	// 90 W can run either server alone but not both; the i5 at 79 W
	// effective peak delivers its full throughput.
	if res.Fractions[0] != 0 && res.Fractions[1] != 0 {
		t.Errorf("fractions = %v; expected one group shut out", res.Fractions)
	}
}

func TestThreeGroups(t *testing.T) {
	// Comb5: E5-2620 + E5-2603 + i5-4460 (§V-B.5).
	models := []GroupModel{
		truthModel(t, server.XeonE52620, workload.SPECjbb, 2),
		truthModel(t, server.XeonE52603, workload.SPECjbb, 2),
		truthModel(t, server.CoreI54460, workload.SPECjbb, 2),
	}
	supply := 500.0
	res, err := Optimize(models, supply, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Must beat uniform allocation on the truth.
	uni, err := UniformFractions([]int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	var uniPerf float64
	for i, m := range models {
		uniPerf += float64(m.Count) * m.Perf(uni[i]*supply/float64(m.Count))
	}
	if res.PredictedPerf < uniPerf {
		t.Errorf("solver %v worse than uniform %v", res.PredictedPerf, uniPerf)
	}
}

func TestFinerGridNoWorse(t *testing.T) {
	// Ablation invariant: a 1 % grid must never lose to Manual's 10 %.
	models := []GroupModel{
		truthModel(t, server.XeonE52620, workload.Streamcluster, 5),
		truthModel(t, server.CoreI54460, workload.Streamcluster, 5),
	}
	for _, supply := range []float64{400, 700, 1000, 1300} {
		coarse, err := Optimize(models, supply, Options{GridStep: 0.10, RefinePasses: -1})
		if err != nil {
			t.Fatal(err)
		}
		fine, err := Optimize(models, supply, Options{GridStep: 0.01, RefinePasses: -1})
		if err != nil {
			t.Fatal(err)
		}
		if fine.PredictedPerf < coarse.PredictedPerf-1e-9 {
			t.Errorf("supply %v: fine %v < coarse %v", supply, fine.PredictedPerf, coarse.PredictedPerf)
		}
	}
}

func TestRefinementImproves(t *testing.T) {
	models := []GroupModel{
		truthModel(t, server.XeonE52620, workload.SPECjbb, 5),
		truthModel(t, server.CoreI54460, workload.SPECjbb, 5),
	}
	base, err := Optimize(models, 800, Options{GridStep: 0.10, RefinePasses: -1})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := Optimize(models, 800, Options{GridStep: 0.10, RefinePasses: 4})
	if err != nil {
		t.Fatal(err)
	}
	if refined.PredictedPerf < base.PredictedPerf {
		t.Errorf("refinement regressed: %v < %v", refined.PredictedPerf, base.PredictedPerf)
	}
}

func TestUniformFractions(t *testing.T) {
	got, err := UniformFractions([]int{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0.5 || got[1] != 0.5 {
		t.Errorf("UniformFractions = %v", got)
	}
	got, err = UniformFractions([]int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0.25 || got[1] != 0.75 {
		t.Errorf("UniformFractions = %v", got)
	}
	if _, err := UniformFractions(nil); !errors.Is(err, ErrNoGroups) {
		t.Errorf("err = %v", err)
	}
	if _, err := UniformFractions([]int{1, 0}); !errors.Is(err, ErrBadModel) {
		t.Errorf("err = %v", err)
	}
}

// Property: fractions are a sub-simplex point (all ≥ 0, sum ≤ 1 + ε) and
// the solver's choice is never worse than uniform, for random supplies
// and group pairs over the truth surfaces.
func TestQuickSolverDominatesUniform(t *testing.T) {
	specs := server.Catalog()
	wls := workload.Catalog()
	f := func(si1, si2, wi uint8, supplyRaw uint16, c1Raw, c2Raw uint8) bool {
		s1 := specs[int(si1)%5] // CPU specs only; GPU perf can be 0
		s2 := specs[int(si2)%5]
		if s1.ID == s2.ID {
			return true
		}
		w := wls[int(wi)%len(wls)]
		c1, c2 := int(c1Raw%3)+1, int(c2Raw%3)+1
		supply := float64(supplyRaw%2000) + 50
		models := []GroupModel{
			{Count: c1, IdleW: s1.IdleW, PeakEffW: workload.PeakEffW(s1, w),
				Perf: func(p float64) float64 { return workload.Perf(s1, w, p) }},
			{Count: c2, IdleW: s2.IdleW, PeakEffW: workload.PeakEffW(s2, w),
				Perf: func(p float64) float64 { return workload.Perf(s2, w, p) }},
		}
		res, err := Optimize(models, supply, Options{GridStep: 0.02})
		if err != nil {
			return false
		}
		var sum float64
		for _, fr := range res.Fractions {
			if fr < -1e-9 || fr > 1+1e-9 {
				return false
			}
			sum += fr
		}
		if sum > 1+1e-9 {
			return false
		}
		uni, err := UniformFractions([]int{c1, c2})
		if err != nil {
			return false
		}
		var uniPerf float64
		for i, m := range models {
			uniPerf += float64(m.Count) * m.Perf(uni[i]*supply/float64(m.Count))
		}
		return res.PredictedPerf >= uniPerf-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func BenchmarkOptimizeTwoGroups(b *testing.B) {
	models := []GroupModel{
		truthModel(b, server.XeonE52620, workload.SPECjbb, 5),
		truthModel(b, server.CoreI54460, workload.SPECjbb, 5),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(models, 800, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizeThreeGroups(b *testing.B) {
	models := []GroupModel{
		truthModel(b, server.XeonE52620, workload.SPECjbb, 2),
		truthModel(b, server.XeonE52603, workload.SPECjbb, 2),
		truthModel(b, server.CoreI54460, workload.SPECjbb, 2),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(models, 500, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
