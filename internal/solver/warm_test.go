package solver

import (
	"math"
	"math/rand"
	"testing"

	"greenhetero/internal/server"
	"greenhetero/internal/workload"
)

// resultsBitEqual asserts two solver results match bit for bit —
// fractions, predicted perf, and evaluation counts alike (the ablation
// tables print Evaluations, so even that must not drift).
func resultsBitEqual(t *testing.T, label string, got, want Result) {
	t.Helper()
	if got.Evaluations != want.Evaluations {
		t.Fatalf("%s: evaluations %d, want %d", label, got.Evaluations, want.Evaluations)
	}
	if math.Float64bits(got.PredictedPerf) != math.Float64bits(want.PredictedPerf) {
		t.Fatalf("%s: perf %v (%#x), want %v (%#x)", label,
			got.PredictedPerf, math.Float64bits(got.PredictedPerf),
			want.PredictedPerf, math.Float64bits(want.PredictedPerf))
	}
	if len(got.Fractions) != len(want.Fractions) {
		t.Fatalf("%s: %d fractions, want %d", label, len(got.Fractions), len(want.Fractions))
	}
	for i := range got.Fractions {
		if math.Float64bits(got.Fractions[i]) != math.Float64bits(want.Fractions[i]) {
			t.Fatalf("%s: fraction %d = %v (%#x), want %v (%#x)", label, i,
				got.Fractions[i], math.Float64bits(got.Fractions[i]),
				want.Fractions[i], math.Float64bits(want.Fractions[i]))
		}
	}
}

// curveModel builds a GroupModel whose Perf is the profiledb-style
// clamped polynomial of coeffs — with the Coeffs declaration that
// unlocks the warm path's memoization and grid tables.
func curveModel(count int, idleW, peakEffW float64, coeffs []float64) GroupModel {
	perf := func(p float64) float64 {
		if p < idleW {
			return 0
		}
		if p > peakEffW {
			p = peakEffW
		}
		var v float64
		for i := len(coeffs) - 1; i >= 0; i-- {
			v = v*p + coeffs[i]
		}
		if v < 0 {
			return 0
		}
		return v
	}
	return GroupModel{Count: count, IdleW: idleW, PeakEffW: peakEffW, Perf: perf, Coeffs: coeffs}
}

// TestWarmMatchesOptimizeFixtures replays the package's standing
// fixtures (the paper's case study, trim, starvation, and three-group
// scenarios) through a shared Warm across varied options, asserting
// bit-identity with the cold reference solve every time.
func TestWarmMatchesOptimizeFixtures(t *testing.T) {
	fixtures := []struct {
		name   string
		models []GroupModel
		supply float64
	}{
		{"case-study", []GroupModel{
			truthModel(t, server.XeonE52620, workload.SPECjbb, 1),
			truthModel(t, server.CoreI54460, workload.SPECjbb, 1),
		}, 220},
		{"single-group", []GroupModel{
			truthModel(t, server.XeonE52620, workload.SPECjbb, 4),
		}, 500},
		{"three-groups", []GroupModel{
			truthModel(t, server.XeonE52620, workload.SPECjbb, 2),
			truthModel(t, server.XeonE52603, workload.SPECjbb, 2),
			truthModel(t, server.CoreI54460, workload.SPECjbb, 2),
		}, 600},
		{"surplus", []GroupModel{
			truthModel(t, server.CoreI54460, workload.SPECjbb, 1),
			truthModel(t, server.XeonE52620, workload.SPECjbb, 1),
		}, 2000},
		{"scarcity", []GroupModel{
			truthModel(t, server.XeonE52620, workload.SPECjbb, 3),
			truthModel(t, server.CoreI54460, workload.SPECjbb, 3),
		}, 90},
		{"curve-models", []GroupModel{
			curveModel(2, 35, 95, []float64{-40, 5.5, -0.012}),
			curveModel(3, 25, 70, []float64{-10, 3.2, -0.008}),
			curveModel(1, 45, 130, []float64{-80, 6.1, -0.015}),
		}, 700},
	}
	optSet := []Options{
		{},
		{GridStep: 0.1},
		{GridStep: 0.05, RefinePasses: 1},
		{GridStep: 0.02, RefinePasses: 5},
		{GridStep: 0.01, RefinePasses: -3}, // negative → no refinement
	}
	var w Warm
	for _, fx := range fixtures {
		for _, o := range optSet {
			want, err := Optimize(fx.models, fx.supply, o)
			if err != nil {
				t.Fatalf("%s: reference: %v", fx.name, err)
			}
			got, err := w.Optimize(fx.models, fx.supply, o)
			if err != nil {
				t.Fatalf("%s: warm: %v", fx.name, err)
			}
			resultsBitEqual(t, fx.name, got, want)
		}
	}
	// Errors are shared with the reference validator.
	if _, err := w.Optimize(nil, 100, Options{}); err != ErrNoGroups {
		t.Fatalf("warm validation: %v, want ErrNoGroups", err)
	}
}

// TestWarmMatchesOptimizeRandom drives 1000 seeded random model sets
// (mixed group counts, curve shapes, supplies, grids, refinement
// depths, and Coeffs declarations) through one shared Warm, asserting
// bit-identity with the cold solve on every draw — buffer reuse across
// changing shapes must never leak state between solves.
func TestWarmMatchesOptimizeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	gridSteps := []float64{0.1, 0.05, 0.02, 0.02, 0.05, 0.1, 0.25, 0.01}
	var w Warm
	for trial := 0; trial < 1000; trial++ {
		n := 1 + rng.Intn(3)
		models := make([]GroupModel, n)
		for g := range models {
			idle := 15 + 40*rng.Float64()
			peak := idle + 20 + 150*rng.Float64()
			coeffs := []float64{
				-60 + 80*rng.Float64(),
				0.5 + 6*rng.Float64(),
				-0.02 * rng.Float64(),
			}
			models[g] = curveModel(1+rng.Intn(10), idle, peak, coeffs)
			if rng.Intn(4) == 0 {
				// Opaque model: same Perf, no purity declaration —
				// forces the non-memoized path for this whole set.
				models[g].Coeffs = nil
			}
		}
		supply := 50 + 2500*rng.Float64()
		o := Options{
			GridStep:     gridSteps[rng.Intn(len(gridSteps))],
			RefinePasses: rng.Intn(5),
		}
		want, err := Optimize(models, supply, o)
		if err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}
		got, err := w.Optimize(models, supply, o)
		if err != nil {
			t.Fatalf("trial %d: warm: %v", trial, err)
		}
		resultsBitEqual(t, "random trial", got, want)
	}
}

// TestWarmMemoization checks the cache behavior directly: an unchanged
// declared-pure input re-solves nothing (zero Perf calls) yet returns
// the identical result with a caller-owned fraction slice, and any
// field change — supply, options, a coefficient — forces a fresh solve.
func TestWarmMemoization(t *testing.T) {
	var calls int
	coeffs := []float64{-40, 5.5, -0.012}
	m := curveModel(2, 35, 95, coeffs)
	inner := m.Perf
	m.Perf = func(p float64) float64 { calls++; return inner(p) }
	m2 := curveModel(3, 25, 70, []float64{-10, 3.2, -0.008})
	models := []GroupModel{m, m2}

	var w Warm
	first, err := w.Optimize(models, 400, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("cold solve made no Perf calls")
	}

	calls = 0
	second, err := w.Optimize(models, 400, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("memoized solve made %d Perf calls, want 0", calls)
	}
	resultsBitEqual(t, "memo hit", second, first)
	// The returned fractions are caller-owned: scribbling on them must
	// not corrupt the cache.
	second.Fractions[0] = -1
	third, err := w.Optimize(models, 400, Options{})
	if err != nil {
		t.Fatal(err)
	}
	resultsBitEqual(t, "memo hit after caller mutation", third, first)

	// Any input change misses: supply…
	calls = 0
	if _, err := w.Optimize(models, 401, Options{}); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("changed supply still hit the memo")
	}
	// …options…
	calls = 0
	if _, err := w.Optimize(models, 401, Options{RefinePasses: 1}); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("changed options still hit the memo")
	}
	// …and a single coefficient bit (a profiledb refit).
	calls = 0
	coeffs[1] = math.Nextafter(coeffs[1], 2*coeffs[1])
	if _, err := w.Optimize(models, 401, Options{RefinePasses: 1}); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("changed coefficient still hit the memo")
	}

	// Invalidate drops the cache explicitly.
	calls = 0
	w.Invalidate()
	if _, err := w.Optimize(models, 401, Options{RefinePasses: 1}); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("Invalidate did not force a re-solve")
	}

	// Opaque models (no Coeffs) are never memoized.
	models[0].Coeffs = nil
	if _, err := w.Optimize(models, 500, Options{}); err != nil {
		t.Fatal(err)
	}
	calls = 0
	if _, err := w.Optimize(models, 500, Options{}); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("opaque model set was memoized")
	}
}

// TestTrimEdgeCases exercises search.trim degeneracies directly: a
// single group over its useful maximum, a supply so scarce every
// nonzero fraction still leaves servers below idle (all zeroed), and
// the zero vector fixed point.
func TestTrimEdgeCases(t *testing.T) {
	one := []GroupModel{curveModel(2, 30, 80, []float64{0, 3, 0})}
	s := &search{models: one, supplyW: 1000}
	got := s.trim([]float64{1})
	// maxUseful = 2·80/1000 = 0.16.
	if want := 2 * 80.0 / 1000; got[0] != want {
		t.Fatalf("single-group trim = %v, want %v", got[0], want)
	}

	// Scarcity: 1 % of 100 W is 0.5 W per server, far below 30 W idle —
	// every fraction collapses to zero.
	s = &search{models: []GroupModel{
		curveModel(2, 30, 80, []float64{0, 3, 0}),
		curveModel(1, 30, 80, []float64{0, 3, 0}),
	}, supplyW: 100}
	got = s.trim([]float64{0.01, 0.2})
	if got[0] != 0 {
		t.Fatalf("below-idle fraction survived trim: %v", got)
	}
	// 0.2·100 = 20 W < 30 W idle for the single-server group too.
	if got[1] != 0 {
		t.Fatalf("below-idle fraction survived trim: %v", got)
	}

	got = s.trim([]float64{0, 0})
	if got[0] != 0 || got[1] != 0 {
		t.Fatalf("zero vector not a trim fixed point: %v", got)
	}

	// The warm trim matches on the same edges.
	var w Warm
	if wgot := w.trimInto(s, []float64{0.01, 0.2}); wgot[0] != 0 || wgot[1] != 0 {
		t.Fatalf("warm trim diverged: %v", wgot)
	}
}

// TestRefineEdgeCases pins search.refine degeneracies: a single group
// returns untouched without evaluating anything, and a step that
// underflows to zero when halved makes every perturbation a no-op.
func TestRefineEdgeCases(t *testing.T) {
	one := []GroupModel{curveModel(2, 30, 80, []float64{0, 3, 0})}
	s := &search{models: one, supplyW: 200}
	c := candidate{fracs: []float64{0.5}, perf: 123}
	got := s.refine(c, 0.01, 3)
	if got.perf != 123 || got.fracs[0] != 0.5 || s.evals != 0 {
		t.Fatalf("single-group refine changed the candidate: %+v evals %d", got, s.evals)
	}

	// Smallest denormal: step/2 underflows to 0, so d ≤ 0 on every pair
	// and no objective is ever evaluated.
	two := []GroupModel{
		curveModel(1, 30, 80, []float64{0, 3, 0}),
		curveModel(1, 30, 80, []float64{0, 3, 0}),
	}
	s = &search{models: two, supplyW: 200}
	c = candidate{fracs: []float64{0.5, 0.5}, perf: 77}
	got = s.refine(c, math.SmallestNonzeroFloat64, 4)
	if got.perf != 77 || s.evals != 0 {
		t.Fatalf("underflowed refine still evaluated: %+v evals %d", got, s.evals)
	}
	var w Warm
	s2 := &search{models: two, supplyW: 200}
	wgot := w.refineInto(s2, candidate{fracs: []float64{0.5, 0.5}, perf: 77}, math.SmallestNonzeroFloat64, 4)
	if wgot.perf != 77 || s2.evals != 0 {
		t.Fatalf("warm underflowed refine diverged: %+v evals %d", wgot, s2.evals)
	}
}
