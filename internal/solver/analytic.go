package solver

import (
	"errors"
	"fmt"
	"math"
)

// Analytic two-group solver. The paper's Eq. 8 objective with quadratic
// projections admits a closed-form KKT treatment once the active clamp
// region is fixed: within the box [idle, peakEff]² the objective is a sum
// of concave quadratics along the budget line, so the optimum is either
// the interior stationary point (equal marginal throughput per watt,
// f₁' = f₂') or one of a small set of boundary candidates (a group
// saturated, pinned at idle, or shut off entirely).
//
// The grid search in Optimize remains the production path — it handles
// three groups and arbitrary projection shapes — but the analytic solver
// provides an independent oracle the tests cross-check it against, and a
// fast path for the common two-group rack.

// QuadraticModel is a group whose per-server projection is an explicit
// quadratic perf(p) = A + B·p + C·p² on [IdleW, PeakEffW], zero below
// IdleW and constant above PeakEffW (the paper's clamping semantics).
type QuadraticModel struct {
	Count    int
	IdleW    float64
	PeakEffW float64
	A, B, C  float64
}

// eval is the clamped per-server projection, floored at zero.
func (m QuadraticModel) eval(p float64) float64 {
	if p < m.IdleW {
		return 0
	}
	if p > m.PeakEffW {
		p = m.PeakEffW
	}
	v := m.A + m.B*p + m.C*p*p
	if v < 0 {
		return 0
	}
	return v
}

func (m QuadraticModel) validate(i int) error {
	if m.Count < 1 || m.IdleW <= 0 || m.PeakEffW <= m.IdleW {
		return fmt.Errorf("%w: group %d: %+v", ErrBadModel, i, m)
	}
	return nil
}

// ErrNotConcave is returned when a projection curves upward (C > 0): the
// stationary point would be a minimum and the KKT enumeration below is
// not exhaustive for such shapes.
var ErrNotConcave = errors.New("solver: projection not concave (C > 0)")

// OptimizeQuadratic2 maximizes count₁·f₁(p₁) + count₂·f₂(p₂) subject to
// count₁·p₁ + count₂·p₂ ≤ supplyW by enumerating the KKT candidates.
// It returns the same Result shape as Optimize (fractions of supply).
func OptimizeQuadratic2(m1, m2 QuadraticModel, supplyW float64) (Result, error) {
	if supplyW <= 0 {
		return Result{}, fmt.Errorf("%w: %v", ErrBadSupply, supplyW)
	}
	if err := m1.validate(0); err != nil {
		return Result{}, err
	}
	if err := m2.validate(1); err != nil {
		return Result{}, err
	}
	if m1.C > 1e-12 || m2.C > 1e-12 {
		return Result{}, ErrNotConcave
	}
	c1, c2 := float64(m1.Count), float64(m2.Count)

	// Candidate per-server allocations (p1, p2); p < idle means "off"
	// and is normalized to 0.
	type cand struct{ p1, p2 float64 }
	var cands []cand
	add := func(p1, p2 float64) {
		if p1 < m1.IdleW {
			p1 = 0
		}
		if p1 > m1.PeakEffW {
			p1 = m1.PeakEffW
		}
		if p2 < m2.IdleW {
			p2 = 0
		}
		if p2 > m2.PeakEffW {
			p2 = m2.PeakEffW
		}
		if c1*p1+c2*p2 > supplyW+1e-9 {
			return
		}
		cands = append(cands, cand{p1, p2})
	}

	// Group 2 off, everything to group 1 (and vice versa).
	add(supplyW/c1, 0)
	add(0, supplyW/c2)
	// Both saturated (feasible only with abundant supply).
	add(m1.PeakEffW, m2.PeakEffW)
	// One group pinned at a box corner, the remainder to the other.
	add(m1.PeakEffW, (supplyW-c1*m1.PeakEffW)/c2)
	add((supplyW-c2*m2.PeakEffW)/c1, m2.PeakEffW)
	add(m1.IdleW, (supplyW-c1*m1.IdleW)/c2)
	add((supplyW-c2*m2.IdleW)/c1, m2.IdleW)
	// Interior stationary point: equal marginals on the active budget
	// line, B₁ + 2C₁p₁ = B₂ + 2C₂p₂ with c₁p₁ + c₂p₂ = supply.
	// Substituting p₂ = (S − c₁p₁)/c₂:
	//   B₁ + 2C₁p₁ = B₂ + 2C₂(S − c₁p₁)/c₂
	//   p₁(2C₁ + 2C₂c₁/c₂) = B₂ − B₁ + 2C₂S/c₂
	den := 2*m1.C + 2*m2.C*c1/c2
	if math.Abs(den) > 1e-15 {
		p1 := (m2.B - m1.B + 2*m2.C*supplyW/c2) / den
		p2 := (supplyW - c1*p1) / c2
		if p1 >= m1.IdleW && p1 <= m1.PeakEffW && p2 >= m2.IdleW && p2 <= m2.PeakEffW {
			add(p1, p2)
		}
	}

	best := Result{Fractions: []float64{0, 0}, PredictedPerf: math.Inf(-1)}
	for _, c := range cands {
		perf := c1*m1.eval(c.p1) + c2*m2.eval(c.p2)
		if perf > best.PredictedPerf {
			best.PredictedPerf = perf
			best.Fractions[0] = c1 * c.p1 / supplyW
			best.Fractions[1] = c2 * c.p2 / supplyW
		}
		best.Evaluations++
	}
	if math.IsInf(best.PredictedPerf, -1) {
		// Supply too small to run anything: allocate nothing.
		best.PredictedPerf = 0
	}
	return best, nil
}
