package solver

import (
	"encoding/binary"
	"math"
)

// Warm is a reusable solver context for the per-epoch hot path. It is
// bit-for-bit equivalent to Optimize — same Fractions, PredictedPerf,
// Evaluations, and errors for every input — but amortizes work across
// calls two ways:
//
//   - Memoization: when every model declares Coeffs (its Perf a pure
//     function of the model fields), the full input — supply, options,
//     and each group's Count/IdleW/PeakEffW/Coeffs — is encoded into a
//     key, and an unchanged input returns the previous Result without
//     re-searching. The key captures everything the search reads, so a
//     hit can never be semantically stale. Under a steady solar plateau
//     and a converged profile database this skips the entire simplex
//     scan.
//   - Per-group grid tables: on a miss, groups 0..n-2 have their
//     objective contributions precomputed once per grid value instead of
//     once per simplex point (the 3-group scan visits each (i,·) row
//     steps times). The last group's fraction is the simplex remainder
//     1−f₀−f₁, which is not a grid multiple, so it is evaluated directly
//     per point; the per-point accumulation replays the reference
//     objective's additions in order, keeping the totals bit-identical.
//
// The grid's tie-breaking is load-bearing: the scan takes the first
// strict improvement in row-major order, so the warm path must visit
// points in exactly the reference order — it accelerates evaluation,
// never reordering or pruning the scan. All search scratch (tables,
// fraction buffers, the refine vector) is preallocated and reused, so a
// steady-state call performs a single small allocation: the returned
// Result's caller-owned Fractions slice.
//
// A Warm is not safe for concurrent use; give each goroutine its own.
// The zero value is ready.
type Warm struct {
	key    []byte // key of the memoized solve
	keyBuf []byte // scratch for building the candidate key
	memoOK bool
	memo   Result // Fractions owned by the cache; copied out on hit

	tables   [][]float64
	tableBuf []float64
	fracs    []float64
	bestBuf  []float64
	refineFr []float64
	trimmed  []float64
}

// Optimize is Optimize with warm-start: identical contract and results,
// reusing this Warm's cache and scratch buffers.
//
// ghlint:allocfree
func (w *Warm) Optimize(models []GroupModel, supplyW float64, opts Options) (Result, error) {
	if err := validate(models, supplyW); err != nil {
		return Result{}, err
	}
	o := opts.withDefaults()

	if key, ok := w.encodeKey(models, supplyW, o); ok {
		if w.memoOK && bytesEqual(key, w.key) {
			return Result{
				Fractions:     append([]float64(nil), w.memo.Fractions...), //lint:ghlint ignore allocfree the caller-owned Fractions copy is the one budgeted per-epoch allocation (Result contract)
				PredictedPerf: w.memo.PredictedPerf,
				Evaluations:   w.memo.Evaluations,
			}, nil
		}
		w.key = append(w.key[:0], key...)
		res := w.solve(models, supplyW, o)
		w.memo = Result{
			Fractions:     append(w.memo.Fractions[:0], res.Fractions...),
			PredictedPerf: res.PredictedPerf,
			Evaluations:   res.Evaluations,
		}
		w.memoOK = true
		return res, nil
	}
	// Opaque Perf (no Coeffs declaration): memoization and tabulation
	// would be unsound, but the buffer-reusing search is still exact.
	w.memoOK = false
	return w.solve(models, supplyW, o), nil
}

// Invalidate drops the memoized solve; the next call re-searches.
func (w *Warm) Invalidate() { w.memoOK = false }

// encodeKey serializes everything the search reads into w.keyBuf.
// Reports false when any model omits Coeffs (Perf not declared pure).
//
// ghlint:allocfree
func (w *Warm) encodeKey(models []GroupModel, supplyW float64, o Options) ([]byte, bool) {
	for i := range models {
		if models[i].Coeffs == nil {
			return nil, false
		}
	}
	key := w.keyBuf[:0]
	key = binary.LittleEndian.AppendUint64(key, math.Float64bits(supplyW))
	key = binary.LittleEndian.AppendUint64(key, math.Float64bits(o.GridStep))
	key = binary.LittleEndian.AppendUint64(key, uint64(o.RefinePasses))
	key = binary.LittleEndian.AppendUint64(key, uint64(len(models)))
	for i := range models {
		m := &models[i]
		key = binary.LittleEndian.AppendUint64(key, uint64(m.Count))
		key = binary.LittleEndian.AppendUint64(key, math.Float64bits(m.IdleW))
		key = binary.LittleEndian.AppendUint64(key, math.Float64bits(m.PeakEffW))
		key = binary.LittleEndian.AppendUint64(key, uint64(len(m.Coeffs)))
		for _, c := range m.Coeffs {
			key = binary.LittleEndian.AppendUint64(key, math.Float64bits(c))
		}
	}
	w.keyBuf = key
	return key, true
}

// solve runs the accelerated search. Inputs are already validated and
// defaulted.
//
// ghlint:allocfree
func (w *Warm) solve(models []GroupModel, supplyW float64, o Options) Result {
	s := search{models: models, supplyW: supplyW}
	best := w.gridSearchFast(&s, o.GridStep)
	best = w.refineInto(&s, best, o.GridStep, o.RefinePasses)
	fracs := w.trimInto(&s, best.fracs)
	return Result{
		Fractions:     append([]float64(nil), fracs...), //lint:ghlint ignore allocfree the caller-owned Fractions copy is the one budgeted per-epoch allocation (Result contract)
		PredictedPerf: best.perf,
		Evaluations:   s.evals,
	}
}

// groupValue is one group's objective contribution at fraction f —
// the exact expression the reference objective evaluates per point.
//
// ghlint:allocfree
func groupValue(m *GroupModel, f, supplyW float64) float64 {
	perServer := f * supplyW / float64(m.Count)
	return float64(m.Count) * m.Perf(perServer)
}

// gridSearchFast scans the simplex in the reference row-major order,
// reading groups 0..n-2 from per-grid-value tables and evaluating the
// last group (the simplex remainder, not a grid multiple) directly.
// Accumulation replays the reference objective: total starts at zero
// and adds group contributions in index order, so every candidate's
// perf is bit-identical and the first-strict-improvement tie-breaking
// picks the same point.
//
// The last group's scan additionally exploits the GroupModel.Perf
// clamping contract (exactly 0 below IdleW, constant above PeakEffW)
// plus the monotone decrease of the residual fraction along a row:
// each row splits into a constant head (per-server power above the
// effective peak), a fully-evaluated middle, and a zero tail (below
// idle). Head and tail reuse the contractually constant value instead
// of re-invoking Perf, and FP monotonicity of the residual expression
// makes the segment boundaries exact — every point's total is still
// the reference's bits.
//
// ghlint:allocfree
func (w *Warm) gridSearchFast(s *search, step float64) candidate {
	n := len(s.models)
	steps := int(1/step + 0.5)
	if cap(w.bestBuf) < n {
		w.bestBuf = make([]float64, n)
	}
	best := candidate{fracs: w.bestBuf[:n], perf: -1}
	for i := range best.fracs {
		best.fracs[i] = 0
	}

	w.fillTables(s, steps, step)

	switch n {
	case 1:
		m := &s.models[0]
		for i := 0; i <= steps; i++ {
			f0 := float64(i) * step
			var total float64
			total += groupValue(m, f0, s.supplyW)
			s.evals++
			if total > best.perf {
				best.perf = total
				best.fracs[0] = f0
			}
		}
	case 2:
		t0 := w.tables[0]
		m1 := &s.models[1]
		for i := 0; i <= steps; i++ {
			f0 := float64(i) * step
			f1 := 1 - f0
			total := 0.0 + t0[i]
			total += groupValue(m1, f1, s.supplyW)
			s.evals++
			if total > best.perf {
				best.perf = total
				best.fracs[0] = f0
				best.fracs[1] = f1
			}
		}
	case 3:
		t0, t1 := w.tables[0], w.tables[1]
		m2 := &s.models[2]
		c2 := float64(m2.Count)
		for i := 0; i <= steps; i++ {
			f0 := float64(i) * step
			base := 0.0 + t0[i]
			jMax := steps - i
			improve := func(j int, total float64) {
				best.perf = total
				f1 := float64(j) * step
				f2 := 1 - f0 - f1
				if f2 < 0 {
					f2 = 0
				}
				best.fracs[0] = f0
				best.fracs[1] = f1
				best.fracs[2] = f2
			}
			j := 0
			// Head: residual power above the effective peak — Perf is
			// contractually constant there; evaluate it once.
			var vPeak float64
			vPeakOK := false
			for ; j <= jMax; j++ {
				f2 := 1 - f0 - float64(j)*step
				if f2 < 0 {
					f2 = 0
				}
				perServer := f2 * s.supplyW / c2
				if perServer <= m2.PeakEffW {
					break
				}
				if !vPeakOK {
					vPeak = c2 * m2.Perf(perServer)
					vPeakOK = true
				}
				if total := base + t1[j] + vPeak; total > best.perf {
					improve(j, total)
				}
			}
			// Middle: inside the projection's validity range.
			for ; j <= jMax; j++ {
				f2 := 1 - f0 - float64(j)*step
				if f2 < 0 {
					f2 = 0
				}
				perServer := f2 * s.supplyW / c2
				if perServer < m2.IdleW {
					break
				}
				if total := base + t1[j] + c2*m2.Perf(perServer); total > best.perf {
					improve(j, total)
				}
			}
			// Tail: residual below idle — Perf is contractually zero.
			for ; j <= jMax; j++ {
				if total := base + t1[j] + 0.0; total > best.perf {
					improve(j, total)
				}
			}
			s.evals += jMax + 1
		}
	}
	return best
}

// fillTables precomputes groups 0..n-2's contributions at every grid
// value, reusing one backing buffer across calls.
//
// ghlint:allocfree
func (w *Warm) fillTables(s *search, steps int, step float64) {
	n := len(s.models)
	tabled := n - 1
	need := tabled * (steps + 1)
	if cap(w.tableBuf) < need {
		w.tableBuf = make([]float64, need)
	}
	if cap(w.tables) < tabled {
		w.tables = make([][]float64, tabled)
	}
	w.tables = w.tables[:tabled]
	for g := 0; g < tabled; g++ {
		tbl := w.tableBuf[g*(steps+1) : (g+1)*(steps+1)]
		m := &s.models[g]
		for i := 0; i <= steps; i++ {
			tbl[i] = groupValue(m, float64(i)*step, s.supplyW)
		}
		w.tables[g] = tbl
	}
}

// refineInto is the reference refine with the pass-local fraction
// vector taken from reused scratch instead of a per-call allocation.
// The arithmetic, iteration order, and acceptance rule are identical.
//
// ghlint:allocfree
func (w *Warm) refineInto(s *search, c candidate, step float64, passes int) candidate {
	n := len(s.models)
	if n == 1 {
		return c
	}
	if cap(w.refineFr) < n {
		w.refineFr = make([]float64, n)
	}
	fr := w.refineFr[:n]
	copy(fr, c.fracs)
	for pass := 0; pass < passes; pass++ {
		step /= 2
		improved := true
		for iter := 0; improved && iter < 20; iter++ {
			improved = false
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if i == j {
						continue
					}
					d := step
					if fr[j] < d {
						d = fr[j]
					}
					if d <= 0 || fr[i]+d > 1 {
						continue
					}
					fr[i] += d
					fr[j] -= d
					if p := s.objective(fr); p > c.perf {
						c.perf = p
						copy(c.fracs, fr)
						improved = true
					} else {
						fr[i] -= d
						fr[j] += d
					}
				}
			}
		}
		copy(fr, c.fracs)
	}
	return c
}

// trimInto is the reference trim writing into reused scratch.
//
// ghlint:allocfree
func (w *Warm) trimInto(s *search, fracs []float64) []float64 {
	if cap(w.trimmed) < len(fracs) {
		w.trimmed = make([]float64, len(fracs))
	}
	out := w.trimmed[:len(fracs)]
	copy(out, fracs)
	for i := range s.models {
		m := &s.models[i]
		maxUseful := float64(m.Count) * m.PeakEffW / s.supplyW
		if out[i] > maxUseful {
			out[i] = maxUseful
		}
		perServer := out[i] * s.supplyW / float64(m.Count)
		if perServer < m.IdleW {
			out[i] = 0
		}
	}
	return out
}

// ghlint:allocfree
func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
