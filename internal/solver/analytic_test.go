package solver

import (
	"errors"
	"testing"
	"testing/quick"
)

// quadFromModel adapts a QuadraticModel into a GroupModel for the grid
// search, so both solvers see the identical objective.
func quadFromModel(m QuadraticModel) GroupModel {
	return GroupModel{
		Count:    m.Count,
		IdleW:    m.IdleW,
		PeakEffW: m.PeakEffW,
		Perf:     m.eval,
	}
}

// caseStudyModels approximates the fig3 servers with concave quadratics
// fitted by hand: perf rises from 0 at idle to max at peakEff.
func caseStudyModels() (QuadraticModel, QuadraticModel) {
	// Xeon E5-2620: idle 88, peakEff 147. perf(p) = -a(p-88)(p-206):
	// concave, zero at idle, increasing through peakEff.
	m1 := QuadraticModel{Count: 1, IdleW: 88, PeakEffW: 147, A: -18128 * 0.001, B: 294 * 0.001, C: -0.001}
	// i5-4460: idle 47, peakEff 79.
	m2 := QuadraticModel{Count: 1, IdleW: 47, PeakEffW: 79, A: -5217 * 0.002, B: 158 * 0.002, C: -0.002}
	return m1, m2
}

func TestOptimizeQuadratic2Validation(t *testing.T) {
	m1, m2 := caseStudyModels()
	if _, err := OptimizeQuadratic2(m1, m2, 0); !errors.Is(err, ErrBadSupply) {
		t.Errorf("zero supply err = %v", err)
	}
	bad := m1
	bad.Count = 0
	if _, err := OptimizeQuadratic2(bad, m2, 200); !errors.Is(err, ErrBadModel) {
		t.Errorf("bad count err = %v", err)
	}
	convex := m1
	convex.C = 0.5
	if _, err := OptimizeQuadratic2(convex, m2, 200); !errors.Is(err, ErrNotConcave) {
		t.Errorf("convex err = %v", err)
	}
}

func TestAnalyticMatchesGridCaseStudy(t *testing.T) {
	m1, m2 := caseStudyModels()
	for _, supply := range []float64{100, 150, 220, 260, 400} {
		exact, err := OptimizeQuadratic2(m1, m2, supply)
		if err != nil {
			t.Fatal(err)
		}
		grid, err := Optimize([]GroupModel{quadFromModel(m1), quadFromModel(m2)}, supply, Options{GridStep: 0.005})
		if err != nil {
			t.Fatal(err)
		}
		if exact.PredictedPerf < grid.PredictedPerf-1e-6 {
			t.Errorf("supply %v: analytic %v below grid %v", supply, exact.PredictedPerf, grid.PredictedPerf)
		}
		// The grid should get within half a step of the analytic optimum.
		if grid.PredictedPerf < exact.PredictedPerf*0.995 {
			t.Errorf("supply %v: grid %v far below analytic %v", supply, grid.PredictedPerf, exact.PredictedPerf)
		}
	}
}

func TestAnalyticTinySupply(t *testing.T) {
	m1, m2 := caseStudyModels()
	res, err := OptimizeQuadratic2(m1, m2, 10) // below both idle floors
	if err != nil {
		t.Fatal(err)
	}
	if res.PredictedPerf != 0 {
		t.Errorf("perf = %v, want 0 when nothing can run", res.PredictedPerf)
	}
}

// Property: for random concave quadratics, the analytic solver never
// loses to the fine grid search (it is an upper bound up to the grid's
// resolution), and its fractions are feasible.
func TestQuickAnalyticDominatesGrid(t *testing.T) {
	f := func(b1Raw, b2Raw uint8, c1Raw, c2Raw uint8, supplyRaw uint16, n1Raw, n2Raw uint8) bool {
		// Build concave quadratics with zero value at idle:
		// perf(p) = B(p−idle) + C(p−idle)² with C ≤ 0 and perf
		// increasing over the band (B + 2C(peak−idle) ≥ 0).
		mk := func(idle, peak float64, bRaw, cRaw uint8, count int) QuadraticModel {
			span := peak - idle
			b := 1 + float64(bRaw)/16
			cMax := b / (2 * span) // keep increasing over the band
			c := -cMax * float64(cRaw) / 300
			// Expand (p−idle) terms into A + Bp + Cp².
			return QuadraticModel{
				Count:    count,
				IdleW:    idle,
				PeakEffW: peak,
				A:        -b*idle + c*idle*idle,
				B:        b - 2*c*idle,
				C:        c,
			}
		}
		m1 := mk(88, 147, b1Raw, c1Raw, int(n1Raw%3)+1)
		m2 := mk(47, 79, b2Raw, c2Raw, int(n2Raw%3)+1)
		supply := float64(supplyRaw%1200) + 30

		exact, err := OptimizeQuadratic2(m1, m2, supply)
		if err != nil {
			return false
		}
		grid, err := Optimize([]GroupModel{quadFromModel(m1), quadFromModel(m2)}, supply, Options{GridStep: 0.01})
		if err != nil {
			return false
		}
		if exact.PredictedPerf < grid.PredictedPerf-1e-6 {
			return false
		}
		var sum float64
		for _, fr := range exact.Fractions {
			if fr < -1e-9 {
				return false
			}
			sum += fr
		}
		return sum <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkOptimizeQuadratic2(b *testing.B) {
	m1, m2 := caseStudyModels()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := OptimizeQuadratic2(m1, m2, 220); err != nil {
			b.Fatal(err)
		}
	}
}
