package faultnet

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// echoServer is a minimal line server: for each received line it
// replies "ack <n>\n" with a running counter.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				sc := bufio.NewScanner(c)
				n := 0
				for sc.Scan() {
					n++
					if _, err := fmt.Fprintf(c, "ack %d\n", n); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// exchange sends one line and reads one response with a deadline.
func exchange(t *testing.T, conn net.Conn, timeout time.Duration) (string, error) {
	t.Helper()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("hello\n")); err != nil {
		return "", err
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimSuffix(line, "\n"), nil
}

func TestScheduleDeterministic(t *testing.T) {
	rates := Rates{Drop: 0.2, Delay: 0.1, Partial: 0.1, Reset: 0.1, Garbage: 0.1}
	a, err := NewSchedule(42, rates)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSchedule(42, rates)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[Fault]int)
	for i := 0; i < 500; i++ {
		fa, fb := a.Next(), b.Next()
		if fa != fb {
			t.Fatalf("draw %d: %v != %v with equal seeds", i, fa, fb)
		}
		seen[fa]++
	}
	// Every configured fault shows up at roughly its rate.
	if seen[Drop] < 50 || seen[Drop] > 150 {
		t.Errorf("drop count %d far from 20%% of 500", seen[Drop])
	}
	if seen[Pass] == 0 {
		t.Error("no passes drawn")
	}
}

func TestScheduleValidation(t *testing.T) {
	if _, err := NewSchedule(1, Rates{Drop: -0.1}); err == nil {
		t.Error("negative rate should error")
	}
	if _, err := NewSchedule(1, Rates{Drop: 0.6, Reset: 0.6}); err == nil {
		t.Error("rates summing past 1 should error")
	}
}

func TestFixedScheduleReplaysThenPasses(t *testing.T) {
	s := NewFixedSchedule(Reset, Garbage)
	want := []Fault{Reset, Garbage, Pass, Pass}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Errorf("draw %d = %v, want %v", i, got, w)
		}
	}
}

func TestProxyPassThrough(t *testing.T) {
	p, err := New(echoServer(t), NewFixedSchedule())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 1; i <= 3; i++ {
		got, err := exchange(t, conn, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("ack %d", i); got != want {
			t.Errorf("exchange %d = %q, want %q", i, got, want)
		}
	}
	if p.Exchanges() != 3 {
		t.Errorf("exchanges = %d, want 3", p.Exchanges())
	}
	if p.Count(Pass) != 3 {
		t.Errorf("pass count = %d, want 3", p.Count(Pass))
	}
}

func TestProxyFaults(t *testing.T) {
	backend := echoServer(t)
	cases := []struct {
		fault Fault
		check func(t *testing.T, got string, err error)
	}{
		{Drop, func(t *testing.T, got string, err error) {
			if err == nil {
				t.Errorf("drop delivered %q", got)
			}
		}},
		{Reset, func(t *testing.T, got string, err error) {
			if err == nil {
				t.Errorf("reset delivered %q", got)
			}
		}},
		{Partial, func(t *testing.T, got string, err error) {
			if err == nil {
				t.Errorf("partial delivered full line %q", got)
			}
		}},
		{Garbage, func(t *testing.T, got string, err error) {
			if err != nil {
				t.Errorf("garbage read failed: %v", err)
			} else if strings.HasPrefix(got, "ack") {
				t.Errorf("garbage fault passed the real response %q", got)
			}
		}},
		{Delay, func(t *testing.T, got string, err error) {
			if err != nil || !strings.HasPrefix(got, "ack") {
				t.Errorf("delayed exchange = %q, %v", got, err)
			}
		}},
	}
	for _, c := range cases {
		t.Run(c.fault.String(), func(t *testing.T) {
			p, err := New(backend, NewFixedSchedule(c.fault), WithDelay(20*time.Millisecond))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = p.Close() })
			conn, err := net.Dial("tcp", p.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			got, xerr := exchange(t, conn, 400*time.Millisecond)
			c.check(t, got, xerr)
			if p.Count(c.fault) != 1 {
				t.Errorf("fault count = %d, want 1", p.Count(c.fault))
			}
			// The backend stays reachable through a fresh connection.
			conn2, err := net.Dial("tcp", p.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer conn2.Close()
			if got, err := exchange(t, conn2, time.Second); err != nil || !strings.HasPrefix(got, "ack") {
				t.Errorf("post-fault exchange = %q, %v", got, err)
			}
		})
	}
}

func TestProxyCloseUnblocksClients(t *testing.T) {
	p, err := New(echoServer(t), NewFixedSchedule(Drop))
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("hi\n")); err != nil {
		t.Fatal(err)
	}
	// Give the proxy a moment to swallow the response, then close it
	// while the client would still be waiting.
	time.Sleep(50 * time.Millisecond)
	done := make(chan error, 1)
	go func() { done <- p.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("proxy close blocked on a dropped exchange")
	}
}
