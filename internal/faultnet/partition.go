// Symmetric network partitions: a named peer set whose traffic is
// dropped in both directions while the partition is active. Chaos
// scenarios toggle one Partition per scheduled window instead of
// scripting per-connection drops; the same primitive drives both the
// TCP proxy (WithPartition) and the fleet chaos engine's logical
// agent-partition events.

package faultnet

import (
	"sync"
	"sync/atomic"
)

// Partition is a symmetric partition over a named peer set. While
// active, every member of the set is severed: requests toward it are
// swallowed before reaching the backend and no response flows back —
// both directions drop, unlike the one-directional Drop fault. Safe
// for concurrent use; activation is a single flag flip, so a scheduler
// can toggle the window while proxies are serving.
type Partition struct {
	mu sync.Mutex
	// ghlint:guardedby mu
	peers map[string]bool
	// ghlint:guardedby mu
	active bool

	drops atomic.Int64
}

// NewPartition builds an inactive partition covering the named peers.
func NewPartition(peers ...string) *Partition {
	set := make(map[string]bool, len(peers))
	for _, p := range peers {
		set[p] = true
	}
	return &Partition{peers: set}
}

// Activate starts the partition window: covered peers are severed.
func (p *Partition) Activate() {
	p.mu.Lock()
	p.active = true
	p.mu.Unlock()
}

// Deactivate heals the partition.
func (p *Partition) Deactivate() {
	p.mu.Lock()
	p.active = false
	p.mu.Unlock()
}

// Active reports whether the partition window is open.
func (p *Partition) Active() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.active
}

// Severed reports whether traffic to and from the named peer is
// currently dropped: the partition is active and covers the peer.
func (p *Partition) Severed(peer string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.active && p.peers[peer]
}

// Peers returns the covered peer names (copy, any order).
func (p *Partition) Peers() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.peers))
	for name := range p.peers {
		out = append(out, name)
	}
	return out
}

// Drops reports how many exchanges were swallowed by the partition
// across all proxies attached to it.
func (p *Partition) Drops() int64 { return p.drops.Load() }
