// Package faultnet is a deterministic fault-injection TCP proxy for the
// telemetry wire protocol's failure paths. It sits between a collector
// and an agent, forwarding newline-delimited exchanges while injecting
// faults — dropped responses, delays, partial writes, connection
// resets, garbage lines — drawn from a seeded schedule, so every test
// run observes the identical fault sequence.
//
// Determinism holds when exchanges through one proxy are serialized,
// which is how the tests use it: one proxy per agent, and the collector
// serializes exchanges per agent over its persistent connection.
package faultnet

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Fault is one injected behaviour for a single request/response
// exchange.
type Fault int

const (
	// Pass forwards the exchange untouched.
	Pass Fault = iota
	// Drop swallows the backend's response; the client times out.
	Drop
	// Delay holds the response for the proxy's delay before forwarding.
	Delay
	// Partial forwards a truncated, unterminated prefix of the
	// response, then closes the connection.
	Partial
	// Reset closes the client connection without responding.
	Reset
	// Garbage replaces the response with a line of non-protocol bytes.
	Garbage

	numFaults = int(Garbage) + 1
)

// String names the fault for counters and logs.
func (f Fault) String() string {
	switch f {
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Partial:
		return "partial"
	case Reset:
		return "reset"
	case Garbage:
		return "garbage"
	default:
		return "pass"
	}
}

// Rates sets per-exchange fault probabilities; the remainder passes.
type Rates struct {
	Drop, Delay, Partial, Reset, Garbage float64
}

// sum returns the total fault probability.
func (r Rates) sum() float64 { return r.Drop + r.Delay + r.Partial + r.Reset + r.Garbage }

// Schedule is a concurrency-safe fault sequence consumed in exchange
// order: either a fixed list (then Pass forever) or draws from a seeded
// RNG against the configured rates. The same seed and rates always
// yield the same sequence.
type Schedule struct {
	mu sync.Mutex
	// ghlint:guardedby mu
	rng *rand.Rand
	// ghlint:guardedby mu
	rates Rates
	// ghlint:guardedby mu
	fixed []Fault
	// ghlint:guardedby mu
	next int
}

// NewSchedule builds a seeded random schedule.
func NewSchedule(seed int64, r Rates) (*Schedule, error) {
	for _, p := range []float64{r.Drop, r.Delay, r.Partial, r.Reset, r.Garbage} {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("faultnet: rate %v out of [0,1]", p)
		}
	}
	if s := r.sum(); s > 1 {
		return nil, fmt.Errorf("faultnet: rates sum to %v > 1", s)
	}
	return &Schedule{rng: rand.New(rand.NewSource(seed)), rates: r}, nil
}

// NewFixedSchedule replays exactly the given faults, then passes
// everything.
func NewFixedSchedule(faults ...Fault) *Schedule {
	return &Schedule{fixed: append([]Fault(nil), faults...)}
}

// Next draws the fault for the next exchange.
func (s *Schedule) Next() Fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rng == nil { // fixed mode
		if s.next < len(s.fixed) {
			f := s.fixed[s.next]
			s.next++
			return f
		}
		return Pass
	}
	x := s.rng.Float64()
	for _, c := range []struct {
		p float64
		f Fault
	}{
		{s.rates.Drop, Drop},
		{s.rates.Delay, Delay},
		{s.rates.Partial, Partial},
		{s.rates.Reset, Reset},
		{s.rates.Garbage, Garbage},
	} {
		if x < c.p {
			return c.f
		}
		x -= c.p
	}
	return Pass
}

// Proxy is one agent's fault-injecting front. Create with New, point
// the collector at Addr, and Close when done.
type Proxy struct {
	backend string
	ln      net.Listener
	sched   *Schedule
	delay   time.Duration
	// part, when non-nil, symmetrically severs this proxy whenever the
	// partition is active and covers peer: the request never reaches
	// the backend and no response returns.
	part *Partition
	peer string

	mu sync.Mutex
	// ghlint:guardedby mu
	conns map[net.Conn]struct{}
	// ghlint:guardedby mu
	closed bool

	wg        sync.WaitGroup
	exchanges atomic.Int64
	counts    [numFaults]atomic.Int64
}

// Option configures a Proxy.
type Option func(*Proxy)

// WithDelay sets the Delay fault's hold time (default 50 ms).
func WithDelay(d time.Duration) Option {
	return func(p *Proxy) {
		if d > 0 {
			p.delay = d
		}
	}
}

// WithPartition attaches a symmetric partition: while part is active
// and covers peer, every exchange through this proxy is dropped in both
// directions — the request is swallowed before the backend sees it, and
// the client, hearing nothing, times out exactly as with Drop. Healing
// the partition (Deactivate) restores normal forwarding on the next
// connection.
func WithPartition(part *Partition, peer string) Option {
	return func(p *Proxy) {
		p.part = part
		p.peer = peer
	}
}

// New starts a proxy on an ephemeral local port in front of backend.
func New(backend string, sched *Schedule, opts ...Option) (*Proxy, error) {
	if sched == nil {
		return nil, errors.New("faultnet: nil schedule")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("faultnet: listen: %w", err)
	}
	p := &Proxy{
		backend: backend,
		ln:      ln,
		sched:   sched,
		delay:   50 * time.Millisecond,
		conns:   make(map[net.Conn]struct{}),
	}
	for _, o := range opts {
		o(p)
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address (dial this instead of the
// backend).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Exchanges reports how many request/response exchanges the proxy has
// intercepted.
func (p *Proxy) Exchanges() int64 { return p.exchanges.Load() }

// Count reports how many times the given fault was injected.
func (p *Proxy) Count(f Fault) int64 {
	if int(f) < 0 || int(f) >= numFaults {
		return 0
	}
	return p.counts[f].Load()
}

// Close stops the proxy and waits for its goroutines.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for c := range p.conns {
		_ = c.Close()
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			_ = conn.Close()
			return
		}
		p.conns[conn] = struct{}{}
		p.mu.Unlock()

		p.wg.Add(1)
		go p.serve(conn)
	}
}

// track registers an auxiliary connection (the backend side) so Close
// can tear it down.
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
	_ = c.Close()
}

// serve proxies one client connection: each client line is forwarded to
// a dedicated backend connection, and the backend's response line comes
// back through the fault schedule.
func (p *Proxy) serve(client net.Conn) {
	defer p.wg.Done()
	defer p.untrack(client)

	backend, err := net.DialTimeout("tcp", p.backend, 5*time.Second)
	if err != nil {
		return // client sees a closed connection
	}
	defer backend.Close()
	if !p.track(backend) {
		return
	}
	defer p.untrack(backend)

	cr := bufio.NewReader(client)
	br := bufio.NewReader(backend)
	for {
		line, err := cr.ReadBytes('\n')
		if err != nil {
			return
		}
		if p.part != nil && p.part.Severed(p.peer) {
			// Symmetric partition: the request never reaches the
			// backend (unlike Drop, which loses only the response).
			// The client's read times out and it tears the connection
			// down itself; wait for that here.
			p.part.drops.Add(1)
			_, _ = cr.ReadBytes('\n')
			return
		}
		if _, err := backend.Write(line); err != nil {
			return
		}
		resp, err := br.ReadBytes('\n')
		if err != nil {
			return
		}
		p.exchanges.Add(1)
		fault := p.sched.Next()
		p.counts[fault].Add(1)
		switch fault {
		case Drop:
			// Swallow the response. The client's read times out and it
			// tears the connection down itself; wait for that here so
			// the next request cannot pair with a ghost response.
			_, _ = cr.ReadBytes('\n')
			return
		case Delay:
			time.Sleep(p.delay)
			if _, err := client.Write(resp); err != nil {
				return
			}
		case Partial:
			_, _ = client.Write(resp[:len(resp)/2])
			return
		case Reset:
			return
		case Garbage:
			if _, err := client.Write([]byte("\x00\x7f{{{ NOT JSON ]]\n")); err != nil {
				return
			}
		default:
			if _, err := client.Write(resp); err != nil {
				return
			}
		}
	}
}
