package faultnet

import (
	"net"
	"sort"
	"testing"
	"time"
)

func TestPartitionSevered(t *testing.T) {
	p := NewPartition("agent-a", "agent-b")
	if p.Active() {
		t.Fatal("new partition active")
	}
	if p.Severed("agent-a") {
		t.Error("inactive partition severs")
	}
	p.Activate()
	if !p.Severed("agent-a") || !p.Severed("agent-b") {
		t.Error("active partition does not sever covered peers")
	}
	if p.Severed("agent-c") {
		t.Error("active partition severs an uncovered peer")
	}
	p.Deactivate()
	if p.Severed("agent-a") {
		t.Error("healed partition still severs")
	}
	peers := p.Peers()
	sort.Strings(peers)
	if len(peers) != 2 || peers[0] != "agent-a" || peers[1] != "agent-b" {
		t.Errorf("peers = %v", peers)
	}
}

// TestProxyPartition drives a symmetric partition through the TCP
// proxy: while active, requests are swallowed before the backend sees
// them and the client times out; healing restores forwarding.
func TestProxyPartition(t *testing.T) {
	backend := echoServer(t)
	part := NewPartition("agent-a")
	proxy, err := New(backend, NewFixedSchedule(), WithPartition(part, "agent-a"))
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	dial := func() net.Conn {
		t.Helper()
		conn, err := net.Dial("tcp", proxy.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = conn.Close() })
		return conn
	}

	// Healthy first: the exchange passes and reaches the backend.
	conn := dial()
	if resp, err := exchange(t, conn, time.Second); err != nil || resp != "ack 1" {
		t.Fatalf("pre-partition exchange: %q, %v", resp, err)
	}

	// Partition: the request is swallowed before the backend sees it
	// and the client's read times out.
	part.Activate()
	if _, err := exchange(t, conn, 300*time.Millisecond); err == nil {
		t.Fatal("exchange through an active partition succeeded")
	}
	_ = conn.Close()
	if got := part.Drops(); got != 1 {
		t.Errorf("partition drops = %d, want 1", got)
	}

	// Heal: a fresh connection forwards normally again (per-connection
	// backend counters restart at 1), and the exchange count proves the
	// severed request was swallowed, never forwarded late.
	part.Deactivate()
	conn2 := dial()
	if resp, err := exchange(t, conn2, time.Second); err != nil || resp != "ack 1" {
		t.Fatalf("post-heal exchange: %q, %v", resp, err)
	}
	if got := proxy.Exchanges(); got != 2 {
		t.Errorf("proxy exchanges = %d, want 2 (severed exchange never counted)", got)
	}
}

// TestProxyPartitionUncoveredPeer: a partition that does not cover this
// proxy's peer never interferes.
func TestProxyPartitionUncoveredPeer(t *testing.T) {
	backend := echoServer(t)
	part := NewPartition("agent-b")
	part.Activate()
	proxy, err := New(backend, NewFixedSchedule(), WithPartition(part, "agent-a"))
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	conn, err := net.Dial("tcp", proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if resp, err := exchange(t, conn, time.Second); err != nil || resp != "ack 1" {
		t.Fatalf("uncovered peer blocked: %q, %v", resp, err)
	}
}
