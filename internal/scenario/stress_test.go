package scenario

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"greenhetero/internal/chaos"
)

const stressDoc = `{
  "name": "mini-storm",
  "solar": {"profile": "high", "peakWatts": 32000, "days": 1, "seed": 1},
  "epochs": 24,
  "seed": 9,
  "initialSoC": 0.5,
  "fleet": {
    "allocator": "hierarchical-par",
    "siteGridBudgetW": 12800,
    "siteBattery": {"capacityWh": 192000}
  },
  "stress": {
    "zones": 4,
    "walRack": "web-0000",
    "snapshotEvery": 4,
    "fleetGen": {
      "racks": 16,
      "templates": [
        {"name": "web", "weight": 3, "policy": "GreenHetero",
         "groups": [{"server": "e5-2620", "count": 5, "workload": "specjbb"}]},
        {"name": "batch", "weight": 1, "policy": "GreenHetero",
         "groups": [{"server": "i5-4460", "count": 8, "workload": "canneal"}]}
      ],
      "startup": {"pattern": "linear", "rampEpochs": 3, "jitterFrac": 0.2}
    },
    "chaos": [
      {"kind": "rack_crash", "atEpoch": 4, "racks": ["web-0001"],
       "fanout": 2, "depth": 2, "recoveryEpochs": 3},
      {"kind": "weather_front", "atEpoch": 6, "duration": 6, "widthRacks": 5, "depthFrac": 0.6},
      {"kind": "zone_outage", "atEpoch": 10, "duration": 3, "zone": 1},
      {"kind": "price_spike", "atEpoch": 12, "duration": 4, "priceScale": 3, "gridBudgetScale": 0.7},
      {"kind": "battery_fade", "atEpoch": 14, "fadeFrac": 0.1},
      {"kind": "daemon_crash", "atEpoch": 16, "duration": 2},
      {"kind": "workload_surge", "atEpoch": 18, "duration": 3, "intensityScale": 1.4, "racks": ["batch"]},
      {"kind": "agent_partition", "atEpoch": 19, "duration": 3, "racks": ["web-0002"]}
    ]
  }
}`

func TestParseAndBuildStorm(t *testing.T) {
	sc, err := Parse(strings.NewReader(stressDoc))
	if err != nil {
		t.Fatal(err)
	}
	storm, err := sc.BuildStorm()
	if err != nil {
		t.Fatal(err)
	}
	// 16 racks apportioned 3:1 → 12 web + 4 batch, template-major names.
	if len(storm.Fleet.Racks) != 16 {
		t.Fatalf("racks = %d, want 16", len(storm.Fleet.Racks))
	}
	if got := storm.Fleet.Racks[0].Rack.Name(); got != "web-0000" {
		t.Errorf("rack 0 = %q", got)
	}
	if got := storm.Fleet.Racks[11].Rack.Name(); got != "web-0011" {
		t.Errorf("rack 11 = %q", got)
	}
	if got := storm.Fleet.Racks[12].Rack.Name(); got != "batch-0000" {
		t.Errorf("rack 12 = %q", got)
	}
	if storm.Chaos.WALRack != 0 {
		t.Errorf("WALRack = %d, want 0 (web-0000)", storm.Chaos.WALRack)
	}
	if storm.Chaos.Zones != 4 || storm.Chaos.Epochs != 24 || storm.Chaos.Seed != 9 {
		t.Errorf("chaos config: %+v", storm.Chaos)
	}
	if len(storm.Chaos.Events) != 8 {
		t.Errorf("events = %d, want 8", len(storm.Chaos.Events))
	}
	if len(storm.Chaos.JoinEpochs) != 16 {
		t.Fatalf("join epochs = %d, want 16", len(storm.Chaos.JoinEpochs))
	}
	for i, j := range storm.Chaos.JoinEpochs {
		if j < 0 || j >= 24 {
			t.Errorf("rack %d joins at epoch %d", i, j)
		}
	}
	// The surge names a template: all 4 batch replicas resolve.
	surge := storm.Chaos.Events[6]
	if surge.Kind != chaos.KindWorkloadSurge || len(surge.Racks) != 4 || surge.Racks[0] != 12 {
		t.Errorf("surge targets = %+v", surge)
	}

	// The built storm must run end to end, never aborting an epoch, with
	// every rack-epoch accounted for in exactly one health bucket.
	res, rep, err := chaos.Run(storm)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Site) != 24 {
		t.Fatalf("site epochs = %d, want 24 (no aborted epochs)", len(res.Site))
	}
	if rep.Racks != 16 || rep.Epochs != 24 || rep.Seed != 9 || rep.Scenario != "mini-storm" {
		t.Errorf("report header: %+v", rep)
	}
	for _, r := range rep.PerRack {
		total := r.ServedEpochs + r.FailedEpochs + r.QuarantinedEpochs + r.AbsentEpochs
		if total != 24 {
			t.Errorf("rack %s epochs served=%d failed=%d quarantined=%d absent=%d sum=%d, want 24",
				r.Name, r.ServedEpochs, r.FailedEpochs, r.QuarantinedEpochs, r.AbsentEpochs, total)
		}
	}
	if rep.DaemonCrashes != 1 || rep.DaemonRecoveries != 1 {
		t.Errorf("daemon crashes=%d recoveries=%d, want 1/1", rep.DaemonCrashes, rep.DaemonRecoveries)
	}
	if rep.Quarantines == 0 || rep.DegradedEpochs == 0 {
		t.Errorf("storm left no marks: quarantines=%d degraded=%d", rep.Quarantines, rep.DegradedEpochs)
	}

	// Same seed, same bytes.
	b1, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	_, rep2, err := chaos.Run(storm)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := rep2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("stress report not byte-identical across same-seed runs")
	}

	// A non-stress scenario cannot build a storm.
	plain := &Scenario{}
	if _, err := plain.BuildStorm(); !errors.Is(err, ErrBadScenario) {
		t.Errorf("BuildStorm on plain scenario: %v", err)
	}
}

// TestStressExplicitFleet stresses an explicit rack list (no fleetGen):
// template targets resolve to the fleet block's replica names.
func TestStressExplicitFleet(t *testing.T) {
	doc := strings.Replace(fleetDoc, `"epochs": 96`, `"epochs": 12`, 1)
	doc = strings.Replace(doc, `"fleet": {`, `"stress": {
    "chaos": [
      {"kind": "rack_crash", "atEpoch": 2, "racks": ["web"], "recoveryEpochs": 2}
    ]
  },
  "fleet": {`, 1)
	sc, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	storm, err := sc.BuildStorm()
	if err != nil {
		t.Fatal(err)
	}
	if len(storm.Fleet.Racks) != 4 {
		t.Fatalf("racks = %d, want 4", len(storm.Fleet.Racks))
	}
	crash := storm.Chaos.Events[0]
	if len(crash.Racks) != 3 || crash.Racks[0] != 0 || crash.Racks[2] != 2 {
		t.Errorf("template target resolved to %v, want web-0..web-2", crash.Racks)
	}
	if _, _, err := chaos.Run(storm); err != nil {
		t.Fatalf("explicit-fleet storm does not run: %v", err)
	}
}

func TestStressValidation(t *testing.T) {
	rep := func(old, new string) string {
		if !strings.Contains(stressDoc, old) {
			t.Fatalf("mutation target %q not in stressDoc", old)
		}
		return strings.Replace(stressDoc, old, new, 1)
	}
	mutations := []struct {
		name string
		doc  string
	}{
		{"negative weight", rep(`"weight": 1`, `"weight": -1`)},
		{"zero-sum weights", strings.Replace(rep(`"weight": 3`, `"weight": 0`), `"weight": 1`, `"weight": 0`, 1)},
		{"zero racks", rep(`"racks": 16`, `"racks": 0`)},
		{"duplicate template", rep(`"name": "batch"`, `"name": "web"`)},
		{"unknown startup pattern", rep(`"pattern": "linear"`, `"pattern": "warp"`)},
		{"ramp spans whole run", rep(`"rampEpochs": 3`, `"rampEpochs": 24`)},
		{"startup jitter out of range", rep(`"jitterFrac": 0.2`, `"jitterFrac": 1.5`)},
		{"unknown kind", rep(`"kind": "zone_outage"`, `"kind": "meteor"`)},
		{"epoch out of range", rep(`"atEpoch": 4`, `"atEpoch": 99`)},
		{"windowed event without duration",
			rep(`"atEpoch": 10, "duration": 3, "zone": 1`, `"atEpoch": 10, "zone": 1`)},
		{"depthFrac out of range", rep(`"depthFrac": 0.6`, `"depthFrac": 1.6`)},
		{"fadeFrac out of range", rep(`"fadeFrac": 0.1`, `"fadeFrac": 1.0`)},
		{"unknown walRack", rep(`"walRack": "web-0000"`, `"walRack": "web-9999"`)},
		{"daemon crash without walRack", rep(`"walRack": "web-0000",`, ``)},
		{"unknown target rack", rep(`"racks": ["web-0001"]`, `"racks": ["nope-0001"]`)},
		{"overlapping same-kind events",
			rep(`{"kind": "zone_outage", "atEpoch": 10, "duration": 3, "zone": 1},`,
				`{"kind": "zone_outage", "atEpoch": 10, "duration": 3, "zone": 1},
      {"kind": "zone_outage", "atEpoch": 11, "duration": 3, "zone": 1},`)},
		{"fleetGen with explicit racks",
			rep(`"siteBattery": {"capacityWh": 192000}`,
				`"siteBattery": {"capacityWh": 192000},
    "racks": [{"name": "x", "policy": "GreenHetero",
     "groups": [{"server": "e5-2620", "count": 1, "workload": "specjbb"}]}]`)},
	}
	for _, tt := range mutations {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(tt.doc)); err == nil {
				t.Errorf("doc parsed: %s", tt.doc)
			} else if !errors.Is(err, ErrBadScenario) {
				t.Errorf("error is not ErrBadScenario: %v", err)
			}
		})
	}
}

// JSON cannot carry NaN, but nothing stops a caller from building the
// spec in Go — validate must still reject it.
func TestStressNaNRejected(t *testing.T) {
	base, err := Parse(strings.NewReader(stressDoc))
	if err != nil {
		t.Fatal(err)
	}
	mutate := []struct {
		name string
		fn   func(*Scenario)
	}{
		{"NaN weight", func(sc *Scenario) { sc.Stress.FleetGen.Templates[0].Weight = math.NaN() }},
		{"Inf weight", func(sc *Scenario) { sc.Stress.FleetGen.Templates[0].Weight = math.Inf(1) }},
		{"NaN sloSupplyFrac", func(sc *Scenario) { sc.Stress.SLOSupplyFrac = math.NaN() }},
		{"NaN depthFrac", func(sc *Scenario) { sc.Stress.Chaos[1].DepthFrac = math.NaN() }},
	}
	for _, tt := range mutate {
		t.Run(tt.name, func(t *testing.T) {
			sc := *base
			stress := *base.Stress
			gen := *base.Stress.FleetGen
			gen.Templates = append([]RackTemplateSpec(nil), base.Stress.FleetGen.Templates...)
			stress.FleetGen = &gen
			stress.Chaos = append([]ChaosEventSpec(nil), base.Stress.Chaos...)
			sc.Stress = &stress
			tt.fn(&sc)
			if err := sc.validate(); !errors.Is(err, ErrBadScenario) {
				t.Errorf("validate: %v", err)
			}
		})
	}
}

func TestApportion(t *testing.T) {
	cases := []struct {
		total   int
		weights []float64
		want    []int
	}{
		{16, []float64{3, 1}, []int{12, 4}},
		{10, []float64{5, 3, 1}, []int{6, 3, 1}},
		{1000, []float64{6, 3, 1}, []int{600, 300, 100}},
		{3, []float64{1, 1}, []int{2, 1}},
		{5, []float64{0, 1}, []int{0, 5}},
	}
	for _, tt := range cases {
		got := apportion(tt.total, tt.weights)
		sum := 0
		for _, c := range got {
			sum += c
		}
		if sum != tt.total {
			t.Errorf("apportion(%d, %v) = %v, sum %d", tt.total, tt.weights, got, sum)
		}
		for i := range tt.want {
			if got[i] != tt.want[i] {
				t.Errorf("apportion(%d, %v) = %v, want %v", tt.total, tt.weights, got, tt.want)
				break
			}
		}
	}
}
