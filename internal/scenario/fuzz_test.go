package scenario

import (
	"bytes"
	"testing"
)

// FuzzLoadScenario hardens the scenario loader against malformed or
// adversarial documents: Parse must either return an error or a
// scenario that satisfies every validate() invariant — never panic.
// Scenarios that parse are additionally pushed through Build, which
// must resolve cleanly or fail with an error (catalog lookups, solar
// generation). Build is only attempted for generator-backed scenarios:
// a TraceFile path would let the fuzzer open arbitrary files.
func FuzzLoadScenario(f *testing.F) {
	f.Add([]byte(`{
		"name": "mixed-rack-demo",
		"groups": [
			{"server": "e5-2620", "count": 5, "workload": "specjbb"},
			{"server": "i5-4460", "count": 5, "workload": "memcached"}
		],
		"policy": "GreenHetero",
		"solar": {"profile": "high", "peakWatts": 2200, "days": 7, "seed": 1},
		"epochs": 96,
		"gridBudgetW": 1000,
		"initialSoC": 1.0,
		"seed": 7
	}`))
	f.Add([]byte(`{"name":"t","groups":[{"server":"e5-2620","count":1,"workload":"specjbb"}],"policy":"Uniform","solar":{"profile":"low","peakWatts":100},"epochs":1}`))
	f.Add([]byte(`{"name":"t","groups":[{"server":"e5-2620","count":1,"workload":"specjbb"}],"policy":"Uniform","traceFile":"x.csv","epochs":4}`))
	f.Add([]byte(`{"name":"","groups":[],"epochs":0}`))
	f.Add([]byte(`{"name":"t","groups":[{"server":"nope","count":-3,"workload":"??"}],"policy":"??","solar":{"profile":"??","peakWatts":-1,"days":-1},"epochs":1}`))
	f.Add([]byte(`{"unknown":"field"}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(fleetDoc))
	f.Add([]byte(stressDoc))
	f.Add([]byte(`{"name":"s","solar":{"profile":"low","peakWatts":100},"epochs":8,"fleet":{},"stress":{"fleetGen":{"racks":4,"templates":[{"name":"a","weight":0,"policy":"Uniform","groups":[{"server":"e5-2620","count":1,"workload":"specjbb"}]}]}}}`))
	f.Add([]byte(`{"name":"s","solar":{"profile":"low","peakWatts":100},"epochs":8,"fleet":{},"stress":{"fleetGen":{"racks":2,"templates":[{"name":"a","weight":-1,"policy":"Uniform","groups":[{"server":"e5-2620","count":1,"workload":"specjbb"}]}]}}}`))
	f.Add([]byte(`{"name":"s","solar":{"profile":"low","peakWatts":100},"epochs":8,"fleet":{},"stress":{"chaos":[{"kind":"zone_outage","atEpoch":1,"duration":2,"zone":1},{"kind":"zone_outage","atEpoch":2,"duration":2,"zone":1}],"fleetGen":{"racks":2,"templates":[{"name":"a","weight":1,"policy":"Uniform","groups":[{"server":"e5-2620","count":1,"workload":"specjbb"}]}]}}}`))
	f.Add([]byte(`{"name":"s","solar":{"profile":"low","peakWatts":100},"epochs":8,"fleet":{},"stress":{"chaos":[{"kind":"daemon_crash","atEpoch":1,"duration":2}],"fleetGen":{"racks":2,"templates":[{"name":"a","weight":1,"policy":"Uniform","groups":[{"server":"e5-2620","count":1,"workload":"specjbb"}]}]}}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Parse(bytes.NewReader(data))
		if err != nil {
			if sc != nil {
				t.Fatalf("Parse returned both a scenario and error %v", err)
			}
			return
		}
		// Parse accepted it: the validate() invariants must hold.
		switch {
		case sc.Name == "":
			t.Fatal("accepted scenario with empty name")
		case sc.Epochs < 1:
			t.Fatalf("accepted scenario with epochs %d", sc.Epochs)
		case sc.Solar == nil && sc.TraceFile == "":
			t.Fatal("accepted scenario with no power source")
		case sc.Solar != nil && sc.TraceFile != "":
			t.Fatal("accepted scenario with both solar and traceFile")
		case sc.Stress != nil && sc.Fleet == nil:
			t.Fatal("accepted stress block without a fleet")
		}
		if sc.TraceFile != "" {
			return // don't let fuzz inputs open arbitrary paths
		}
		if sc.Fleet != nil {
			fuzzFleet(t, sc)
			return
		}
		switch {
		case len(sc.Groups) == 0:
			t.Fatal("accepted scenario with no groups")
		case sc.Policy == "":
			t.Fatal("accepted scenario with empty policy")
		}
		cfg, err := sc.Build()
		if err != nil {
			return // bad catalog ids etc. must error, not panic
		}
		if cfg.Rack == nil || cfg.Solar == nil || cfg.Policy == nil {
			t.Fatal("Build returned an incomplete config without error")
		}
		if cfg.Epochs != sc.Epochs || cfg.Seed != sc.Seed {
			t.Fatalf("Build dropped fields: epochs %d→%d seed %d→%d",
				sc.Epochs, cfg.Epochs, sc.Seed, cfg.Seed)
		}
	})
}

// fuzzFleet checks fleet/stress invariants on an accepted scenario.
// Builds are skipped for fleets large enough that expanding the racks
// would dominate the fuzz budget.
func fuzzFleet(t *testing.T, sc *Scenario) {
	generated := sc.Stress != nil && sc.Stress.FleetGen != nil
	switch {
	case len(sc.Groups) != 0 || sc.Policy != "":
		t.Fatal("accepted fleet scenario with single-rack fields")
	case !generated && len(sc.Fleet.Racks) == 0:
		t.Fatal("accepted fleet scenario with no racks and no generator")
	case generated && len(sc.Fleet.Racks) != 0:
		t.Fatal("accepted both fleet.racks and stress.fleetGen")
	}
	size := 0
	if generated {
		size = sc.Stress.FleetGen.Racks
		for _, tmpl := range sc.Stress.FleetGen.Templates {
			if badFrac(tmpl.Weight) || tmpl.Weight < 0 {
				t.Fatalf("accepted template weight %v", tmpl.Weight)
			}
		}
	} else {
		for _, r := range sc.Fleet.Racks {
			n := r.Count
			if n == 0 {
				n = 1
			}
			size += n
		}
	}
	if size > 64 {
		return // validation already ran; building huge fleets is just slow
	}
	if sc.Stress != nil {
		storm, err := sc.BuildStorm()
		if err != nil {
			return // catalog misses etc. must error, not panic
		}
		if len(storm.Fleet.Racks) != storm.Chaos.Racks && storm.Chaos.Racks != 0 {
			t.Fatalf("storm schedule sized for %d racks, fleet has %d",
				storm.Chaos.Racks, len(storm.Fleet.Racks))
		}
		return
	}
	cfg, err := sc.BuildFleet()
	if err != nil {
		return
	}
	if len(cfg.Racks) == 0 || cfg.Solar == nil {
		t.Fatal("BuildFleet returned an incomplete config without error")
	}
}
