package scenario

import (
	"bytes"
	"testing"
)

// FuzzLoadScenario hardens the scenario loader against malformed or
// adversarial documents: Parse must either return an error or a
// scenario that satisfies every validate() invariant — never panic.
// Scenarios that parse are additionally pushed through Build, which
// must resolve cleanly or fail with an error (catalog lookups, solar
// generation). Build is only attempted for generator-backed scenarios:
// a TraceFile path would let the fuzzer open arbitrary files.
func FuzzLoadScenario(f *testing.F) {
	f.Add([]byte(`{
		"name": "mixed-rack-demo",
		"groups": [
			{"server": "e5-2620", "count": 5, "workload": "specjbb"},
			{"server": "i5-4460", "count": 5, "workload": "memcached"}
		],
		"policy": "GreenHetero",
		"solar": {"profile": "high", "peakWatts": 2200, "days": 7, "seed": 1},
		"epochs": 96,
		"gridBudgetW": 1000,
		"initialSoC": 1.0,
		"seed": 7
	}`))
	f.Add([]byte(`{"name":"t","groups":[{"server":"e5-2620","count":1,"workload":"specjbb"}],"policy":"Uniform","solar":{"profile":"low","peakWatts":100},"epochs":1}`))
	f.Add([]byte(`{"name":"t","groups":[{"server":"e5-2620","count":1,"workload":"specjbb"}],"policy":"Uniform","traceFile":"x.csv","epochs":4}`))
	f.Add([]byte(`{"name":"","groups":[],"epochs":0}`))
	f.Add([]byte(`{"name":"t","groups":[{"server":"nope","count":-3,"workload":"??"}],"policy":"??","solar":{"profile":"??","peakWatts":-1,"days":-1},"epochs":1}`))
	f.Add([]byte(`{"unknown":"field"}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`[1,2,3]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Parse(bytes.NewReader(data))
		if err != nil {
			if sc != nil {
				t.Fatalf("Parse returned both a scenario and error %v", err)
			}
			return
		}
		// Parse accepted it: the validate() invariants must hold.
		switch {
		case sc.Name == "":
			t.Fatal("accepted scenario with empty name")
		case len(sc.Groups) == 0:
			t.Fatal("accepted scenario with no groups")
		case sc.Epochs < 1:
			t.Fatalf("accepted scenario with epochs %d", sc.Epochs)
		case sc.Policy == "":
			t.Fatal("accepted scenario with empty policy")
		case sc.Solar == nil && sc.TraceFile == "":
			t.Fatal("accepted scenario with no power source")
		case sc.Solar != nil && sc.TraceFile != "":
			t.Fatal("accepted scenario with both solar and traceFile")
		}
		if sc.TraceFile != "" {
			return // don't let fuzz inputs open arbitrary paths
		}
		cfg, err := sc.Build()
		if err != nil {
			return // bad catalog ids etc. must error, not panic
		}
		if cfg.Rack == nil || cfg.Solar == nil || cfg.Policy == nil {
			t.Fatal("Build returned an incomplete config without error")
		}
		if cfg.Epochs != sc.Epochs || cfg.Seed != sc.Seed {
			t.Fatalf("Build dropped fields: epochs %d→%d seed %d→%d",
				sc.Epochs, cfg.Epochs, sc.Seed, cfg.Seed)
		}
	})
}
