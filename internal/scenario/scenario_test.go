package scenario

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"greenhetero/internal/server"
	"greenhetero/internal/sim"
	"greenhetero/internal/solar"
	"greenhetero/internal/workload"
)

const validDoc = `{
  "name": "mixed-rack-demo",
  "groups": [
    {"server": "e5-2620", "count": 5, "workload": "specjbb"},
    {"server": "i5-4460", "count": 5, "workload": "memcached"}
  ],
  "policy": "GreenHetero",
  "solar": {"profile": "high", "peakWatts": 2200, "days": 2, "seed": 1},
  "epochs": 48,
  "gridBudgetW": 1000,
  "seed": 7
}`

func TestParseAndBuild(t *testing.T) {
	sc, err := Parse(strings.NewReader(validDoc))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "mixed-rack-demo" || len(sc.Groups) != 2 {
		t.Fatalf("scenario = %+v", sc)
	}
	cfg, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Rack.Servers() != 10 {
		t.Errorf("servers = %d", cfg.Rack.Servers())
	}
	if cfg.Policy.Name() != "GreenHetero" {
		t.Errorf("policy = %s", cfg.Policy.Name())
	}
	if cfg.Solar.Len() != 2*96 {
		t.Errorf("trace len = %d", cfg.Solar.Len())
	}
	// Group workloads realigned to the rack's sorted group order.
	for i, g := range cfg.Rack.Groups() {
		want := workload.SPECjbb
		if g.Spec.ID == server.CoreI54460 {
			want = workload.Memcached
		}
		if cfg.GroupWorkloads[i].ID != want {
			t.Errorf("group %s workload = %s, want %s", g.Spec.ID, cfg.GroupWorkloads[i].ID, want)
		}
	}
	// The config actually runs.
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 48 {
		t.Errorf("epochs = %d", len(res.Epochs))
	}
}

func TestParseRejectsBadDocs(t *testing.T) {
	tests := []struct {
		name string
		doc  string
	}{
		{"not json", "nope"},
		{"unknown field", `{"name":"x","frobnicate":1}`},
		{"missing name", `{"groups":[{"server":"e5-2620","count":1,"workload":"specjbb"}],"policy":"Uniform","epochs":1,"solar":{"profile":"high","peakWatts":1}}`},
		{"no groups", `{"name":"x","groups":[],"policy":"Uniform","epochs":1,"solar":{"profile":"high","peakWatts":1}}`},
		{"zero epochs", `{"name":"x","groups":[{"server":"e5-2620","count":1,"workload":"specjbb"}],"policy":"Uniform","epochs":0,"solar":{"profile":"high","peakWatts":1}}`},
		{"missing policy", `{"name":"x","groups":[{"server":"e5-2620","count":1,"workload":"specjbb"}],"epochs":1,"solar":{"profile":"high","peakWatts":1}}`},
		{"no trace source", `{"name":"x","groups":[{"server":"e5-2620","count":1,"workload":"specjbb"}],"policy":"Uniform","epochs":1}`},
		{"both trace sources", `{"name":"x","groups":[{"server":"e5-2620","count":1,"workload":"specjbb"}],"policy":"Uniform","epochs":1,"solar":{"profile":"high","peakWatts":1},"traceFile":"x.csv"}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(tt.doc)); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestBuildRejectsUnknownRefs(t *testing.T) {
	mk := func(mutate func(*Scenario)) *Scenario {
		sc, err := Parse(strings.NewReader(validDoc))
		if err != nil {
			t.Fatal(err)
		}
		mutate(sc)
		return sc
	}
	tests := []struct {
		name string
		sc   *Scenario
	}{
		{"unknown server", mk(func(s *Scenario) { s.Groups[0].Server = "vax" })},
		{"unknown workload", mk(func(s *Scenario) { s.Groups[0].Workload = "doom" })},
		{"unknown policy", mk(func(s *Scenario) { s.Policy = "Oracle" })},
		{"bad profile", mk(func(s *Scenario) { s.Solar.Profile = "wind" })},
		{"zero count", mk(func(s *Scenario) { s.Groups[0].Count = 0 })},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := tt.sc.Build(); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestLoadFileAndTraceFile(t *testing.T) {
	dir := t.TempDir()
	// Write a trace CSV the scenario references.
	tr, err := solar.Generate(solar.Config{
		Profile: solar.Low, PeakWatts: 1500, Days: 1, Step: 15 * time.Minute, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "trace.csv")
	f, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	doc := `{
  "name": "replay",
  "groups": [{"server": "e5-2620", "count": 5, "workload": "specjbb"}],
  "policy": "Uniform",
  "traceFile": ` + jsonString(tracePath) + `,
  "epochs": 24,
  "gridBudgetW": 500
}`
	scPath := filepath.Join(dir, "scenario.json")
	if err := os.WriteFile(scPath, []byte(doc), 0o600); err != nil {
		t.Fatal(err)
	}
	sc, err := LoadFile(scPath)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Solar.Len() != 96 {
		t.Errorf("trace len = %d", cfg.Solar.Len())
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file should error")
	}
	if !errors.Is(mustErr(t, sc, "/nonexistent/trace.csv"), os.ErrNotExist) {
		t.Error("missing trace file should surface ErrNotExist")
	}
}

func mustErr(t *testing.T, sc *Scenario, traceFile string) error {
	t.Helper()
	bad := *sc
	bad.TraceFile = traceFile
	_, err := bad.Build()
	if err == nil {
		t.Fatal("want error")
	}
	return err
}

func jsonString(s string) string { return `"` + strings.ReplaceAll(s, `\`, `\\`) + `"` }
