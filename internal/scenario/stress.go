// Stress scenarios: a "stress" block turns a fleet scenario into a
// seeded failure storm. "fleetGen" generates a heterogeneous fleet from
// weighted rack templates with a startup pattern, and "chaos" schedules
// domain events over the run:
//
//	"stress": {
//	  "fleetGen": {
//	    "racks": 1000,
//	    "templates": [
//	      {"name": "web", "weight": 6, "policy": "GreenHetero",
//	       "groups": [{"server": "e5-2620", "count": 5, "workload": "specjbb"}]},
//	      {"name": "batch", "weight": 1, "policy": "GreenHetero",
//	       "groups": [{"server": "i5-4460", "count": 8, "workload": "canneal"}]}
//	    ],
//	    "startup": {"pattern": "wave", "rampEpochs": 4, "waves": 4, "jitterFrac": 0.25}
//	  },
//	  "zones": 8,
//	  "walRack": "web-0000",
//	  "chaos": [
//	    {"kind": "rack_crash", "atEpoch": 6, "racks": ["web-0003"],
//	     "fanout": 3, "depth": 3, "recoveryEpochs": 6, "jitterFrac": 0.3},
//	    {"kind": "weather_front", "atEpoch": 10, "duration": 16,
//	     "widthRacks": 220, "depthFrac": 0.7}
//	  ]
//	}
//
// Event targets name either a template (all its replicas) or one
// generated rack ("web-0007"). Validation rejects NaN/negative and
// zero-sum template weights and same-kind chaos events whose nominal
// windows overlap on intersecting targets, so a storm schedule is
// unambiguous before anything runs.
package scenario

import (
	"fmt"
	"math"
	"sort"

	"greenhetero/internal/chaos"
	"greenhetero/internal/cluster"
	"greenhetero/internal/policy"
)

// RackTemplateSpec is one weighted rack template in the fleet
// generator; replica counts follow the weights (largest remainder).
type RackTemplateSpec struct {
	Name   string      `json:"name"`
	Weight float64     `json:"weight"`
	Groups []GroupSpec `json:"groups"`
	Policy string      `json:"policy"`
}

// StartupSpec staggers generated racks' join epochs (see
// chaos.JoinEpochs).
type StartupSpec struct {
	Pattern    string  `json:"pattern"`
	RampEpochs int     `json:"rampEpochs,omitempty"`
	Waves      int     `json:"waves,omitempty"`
	JitterFrac float64 `json:"jitterFrac,omitempty"`
}

// FleetGenSpec generates a fleet of Racks replicas apportioned across
// the weighted templates, named "<template>-NNNN" in template order.
type FleetGenSpec struct {
	Racks     int                `json:"racks"`
	Templates []RackTemplateSpec `json:"templates"`
	Startup   *StartupSpec       `json:"startup,omitempty"`
}

// BreakerSpec tunes the fleet's per-rack circuit breaker.
type BreakerSpec struct {
	FailureThreshold int `json:"failureThreshold,omitempty"`
	CooldownEpochs   int `json:"cooldownEpochs,omitempty"`
}

// ChaosEventSpec is one scheduled chaos event. Only the fields its
// kind documents in internal/chaos are read.
type ChaosEventSpec struct {
	Kind     string `json:"kind"`
	AtEpoch  int    `json:"atEpoch"`
	Duration int    `json:"duration,omitempty"`
	// Racks names targets: a template name covers all its replicas, any
	// other entry must match a generated rack exactly. Empty means the
	// whole fleet for surge/partition kinds.
	Racks           []string `json:"racks,omitempty"`
	Zone            int      `json:"zone,omitempty"`
	Fanout          int      `json:"fanout,omitempty"`
	Depth           int      `json:"depth,omitempty"`
	RecoveryEpochs  int      `json:"recoveryEpochs,omitempty"`
	JitterFrac      float64  `json:"jitterFrac,omitempty"`
	DepthFrac       float64  `json:"depthFrac,omitempty"`
	WidthRacks      int      `json:"widthRacks,omitempty"`
	PriceScale      float64  `json:"priceScale,omitempty"`
	GridBudgetScale float64  `json:"gridBudgetScale,omitempty"`
	FadeFrac        float64  `json:"fadeFrac,omitempty"`
	IntensityScale  float64  `json:"intensityScale,omitempty"`
}

// StressSpec is the scenario file's stress block.
type StressSpec struct {
	// FleetGen generates the fleet; without it the explicit fleet.racks
	// list is stressed instead.
	FleetGen *FleetGenSpec `json:"fleetGen,omitempty"`
	// Chaos is the storm schedule.
	Chaos []ChaosEventSpec `json:"chaos,omitempty"`
	// Zones partitions racks for zone outages (rack i in zone i mod
	// Zones; default 4).
	Zones int `json:"zones,omitempty"`
	// SLOSupplyFrac is the stress report's SLO floor (default 0.5).
	SLOSupplyFrac float64 `json:"sloSupplyFrac,omitempty"`
	// WALRack names the rack whose daemon is checkpointed through the
	// WAL layer; required for daemon_crash events.
	WALRack string `json:"walRack,omitempty"`
	// SnapshotEvery is the WAL snapshot cadence in commits (default 8).
	SnapshotEvery int `json:"snapshotEvery,omitempty"`
	// Breaker tunes the per-rack circuit breaker.
	Breaker *BreakerSpec `json:"breaker,omitempty"`
}

// stressKinds are the accepted chaos event kinds.
var stressKinds = map[string]bool{
	chaos.KindRackCrash:      true,
	chaos.KindZoneOutage:     true,
	chaos.KindWeatherFront:   true,
	chaos.KindPriceSpike:     true,
	chaos.KindBatteryFade:    true,
	chaos.KindWorkloadSurge:  true,
	chaos.KindAgentPartition: true,
	chaos.KindDaemonCrash:    true,
}

func badFrac(f float64) bool { return math.IsNaN(f) || math.IsInf(f, 0) }

// validate checks the stress block against its scenario. The fleet
// block has already been validated.
func (st *StressSpec) validate(sc *Scenario) error {
	if st.Zones < 0 {
		return fmt.Errorf("%w: stress zones %d", ErrBadScenario, st.Zones)
	}
	if badFrac(st.SLOSupplyFrac) || st.SLOSupplyFrac < 0 || st.SLOSupplyFrac > 1 {
		return fmt.Errorf("%w: stress sloSupplyFrac %v outside [0,1]", ErrBadScenario, st.SLOSupplyFrac)
	}
	if st.SnapshotEvery < 0 {
		return fmt.Errorf("%w: stress snapshotEvery %d", ErrBadScenario, st.SnapshotEvery)
	}
	if g := st.FleetGen; g != nil {
		if err := g.validate(sc); err != nil {
			return err
		}
	}
	names, tmpls, err := st.rackNames(sc)
	if err != nil {
		return err
	}
	if st.WALRack != "" {
		if _, err := resolveOneRack(st.WALRack, names); err != nil {
			return fmt.Errorf("%w: stress walRack: %v", ErrBadScenario, err)
		}
	}
	zones := st.Zones
	if zones == 0 {
		zones = 4
	}
	for i, ev := range st.Chaos {
		if err := st.checkEvent(i, ev, sc, zones, names, tmpls); err != nil {
			return err
		}
	}
	return st.checkOverlaps(sc, names, tmpls)
}

func (g *FleetGenSpec) validate(sc *Scenario) error {
	if g.Racks < 1 {
		return fmt.Errorf("%w: fleetGen racks %d", ErrBadScenario, g.Racks)
	}
	if len(g.Templates) == 0 {
		return fmt.Errorf("%w: fleetGen has no templates", ErrBadScenario)
	}
	var sum float64
	seen := map[string]bool{}
	for i, t := range g.Templates {
		switch {
		case t.Name == "":
			return fmt.Errorf("%w: fleetGen template %d missing name", ErrBadScenario, i)
		case seen[t.Name]:
			return fmt.Errorf("%w: fleetGen template %q duplicated", ErrBadScenario, t.Name)
		case badFrac(t.Weight) || t.Weight < 0:
			return fmt.Errorf("%w: fleetGen template %q weight %v (must be finite and non-negative)", ErrBadScenario, t.Name, t.Weight)
		case len(t.Groups) == 0:
			return fmt.Errorf("%w: fleetGen template %q has no groups", ErrBadScenario, t.Name)
		case t.Policy == "":
			return fmt.Errorf("%w: fleetGen template %q missing policy", ErrBadScenario, t.Name)
		}
		seen[t.Name] = true
		sum += t.Weight
	}
	if sum <= 0 {
		return fmt.Errorf("%w: fleetGen template weights sum to %v (zero-sum fleet)", ErrBadScenario, sum)
	}
	if s := g.Startup; s != nil {
		if s.RampEpochs < 0 || s.RampEpochs >= sc.Epochs {
			return fmt.Errorf("%w: startup ramp %d epochs of %d", ErrBadScenario, s.RampEpochs, sc.Epochs)
		}
		if badFrac(s.JitterFrac) || s.JitterFrac < 0 || s.JitterFrac >= 1 {
			return fmt.Errorf("%w: startup jitterFrac %v outside [0,1)", ErrBadScenario, s.JitterFrac)
		}
		switch s.Pattern {
		case chaos.StartupInstant, chaos.StartupLinear, chaos.StartupExponential:
		case chaos.StartupWave:
			if s.Waves < 1 {
				return fmt.Errorf("%w: startup waves %d", ErrBadScenario, s.Waves)
			}
		default:
			return fmt.Errorf("%w: unknown startup pattern %q", ErrBadScenario, s.Pattern)
		}
	}
	return nil
}

// checkEvent validates one chaos event's parameters and targets.
func (st *StressSpec) checkEvent(i int, ev ChaosEventSpec, sc *Scenario, zones int, names []string, tmpls map[string][]int) error {
	bad := func(f string, args ...any) error {
		return fmt.Errorf("%w: chaos event %d (%s): %s", ErrBadScenario, i, ev.Kind, fmt.Sprintf(f, args...))
	}
	if !stressKinds[ev.Kind] {
		return fmt.Errorf("%w: chaos event %d: unknown kind %q", ErrBadScenario, i, ev.Kind)
	}
	if ev.AtEpoch < 0 || ev.AtEpoch >= sc.Epochs {
		return bad("atEpoch %d outside [0,%d)", ev.AtEpoch, sc.Epochs)
	}
	if _, err := resolveRacks(ev.Racks, names, tmpls); err != nil {
		return bad("%v", err)
	}
	windowed := ev.Kind != chaos.KindRackCrash && ev.Kind != chaos.KindBatteryFade
	if windowed && ev.Duration < 1 {
		return bad("duration %d (windowed events need at least one epoch)", ev.Duration)
	}
	if badFrac(ev.JitterFrac) || ev.JitterFrac < 0 || ev.JitterFrac >= 1 {
		return bad("jitterFrac %v outside [0,1)", ev.JitterFrac)
	}
	switch ev.Kind {
	case chaos.KindRackCrash:
		if len(ev.Racks) == 0 {
			return bad("no seed racks")
		}
		if ev.RecoveryEpochs < 1 {
			return bad("recoveryEpochs %d", ev.RecoveryEpochs)
		}
		if ev.Fanout < 0 || ev.Depth < 0 {
			return bad("fanout %d depth %d", ev.Fanout, ev.Depth)
		}
	case chaos.KindZoneOutage:
		if ev.Zone < 0 || ev.Zone >= zones {
			return bad("zone %d of %d", ev.Zone, zones)
		}
	case chaos.KindWeatherFront:
		if ev.WidthRacks < 1 {
			return bad("widthRacks %d", ev.WidthRacks)
		}
		if badFrac(ev.DepthFrac) || ev.DepthFrac <= 0 || ev.DepthFrac > 1 {
			return bad("depthFrac %v outside (0,1]", ev.DepthFrac)
		}
	case chaos.KindPriceSpike:
		if badFrac(ev.PriceScale) || ev.PriceScale < 0 {
			return bad("priceScale %v", ev.PriceScale)
		}
		if badFrac(ev.GridBudgetScale) || ev.GridBudgetScale < 0 || ev.GridBudgetScale > 1 {
			return bad("gridBudgetScale %v outside [0,1]", ev.GridBudgetScale)
		}
	case chaos.KindBatteryFade:
		if badFrac(ev.FadeFrac) || ev.FadeFrac <= 0 || ev.FadeFrac >= 1 {
			return bad("fadeFrac %v outside (0,1)", ev.FadeFrac)
		}
	case chaos.KindWorkloadSurge:
		if badFrac(ev.IntensityScale) || ev.IntensityScale <= 0 {
			return bad("intensityScale %v", ev.IntensityScale)
		}
	case chaos.KindDaemonCrash:
		if st.WALRack == "" {
			return bad("requires stress.walRack")
		}
	}
	return nil
}

// nominalWindow is an event's epoch span for overlap checking: the
// scheduled window, or for cascades the seed-to-nominal-recovery span.
func nominalWindow(ev ChaosEventSpec) (int, int) {
	switch ev.Kind {
	case chaos.KindRackCrash:
		return ev.AtEpoch, ev.AtEpoch + ev.Depth + ev.RecoveryEpochs
	case chaos.KindBatteryFade:
		return ev.AtEpoch, ev.AtEpoch + 1
	case chaos.KindDaemonCrash:
		return ev.AtEpoch, ev.AtEpoch + 1 + ev.Duration
	default:
		return ev.AtEpoch, ev.AtEpoch + ev.Duration
	}
}

// checkOverlaps rejects same-kind events whose nominal windows overlap
// on intersecting targets — an ambiguous schedule (which event owns the
// rack's downtime?) that would also make reports unattributable.
func (st *StressSpec) checkOverlaps(sc *Scenario, names []string, tmpls map[string][]int) error {
	for i := 0; i < len(st.Chaos); i++ {
		for j := i + 1; j < len(st.Chaos); j++ {
			a, b := st.Chaos[i], st.Chaos[j]
			if a.Kind != b.Kind {
				continue
			}
			aFrom, aTo := nominalWindow(a)
			bFrom, bTo := nominalWindow(b)
			if aFrom >= bTo || bFrom >= aTo {
				continue
			}
			if a.Kind == chaos.KindZoneOutage && a.Zone != b.Zone {
				continue
			}
			if a.Kind == chaos.KindRackCrash || a.Kind == chaos.KindWorkloadSurge || a.Kind == chaos.KindAgentPartition {
				ra, _ := resolveRacks(a.Racks, names, tmpls)
				rb, _ := resolveRacks(b.Racks, names, tmpls)
				if !targetsIntersect(ra, rb, len(names)) {
					continue
				}
			}
			return fmt.Errorf("%w: chaos events %d and %d (%s) overlap on epochs [%d,%d)∩[%d,%d) with intersecting targets",
				ErrBadScenario, i, j, a.Kind, aFrom, aTo, bFrom, bTo)
		}
	}
	return nil
}

// targetsIntersect reports whether two resolved target sets share a
// rack; nil means the whole fleet.
func targetsIntersect(a, b []int, n int) bool {
	if n == 0 {
		return false
	}
	if a == nil || b == nil {
		return true
	}
	set := make(map[int]bool, len(a))
	for _, r := range a {
		set[r] = true
	}
	for _, r := range b {
		if set[r] {
			return true
		}
	}
	return false
}

// apportion splits total replicas across weights by largest remainder.
func apportion(total int, weights []float64) []int {
	counts := make([]int, len(weights))
	var sum float64
	for _, w := range weights {
		sum += w
	}
	rem := make([]float64, len(weights))
	assigned := 0
	for i, w := range weights {
		exact := float64(total) * w / sum
		counts[i] = int(math.Floor(exact))
		rem[i] = exact - float64(counts[i])
		assigned += counts[i]
	}
	for assigned < total {
		best := 0
		for i := 1; i < len(rem); i++ {
			if rem[i] > rem[best] {
				best = i
			}
		}
		counts[best]++
		rem[best] = -1
		assigned++
	}
	return counts
}

// rackNames expands the stressed fleet's rack names in fleet order and
// maps each template name to its replica indices. Shared by validation
// and BuildStorm so event targets resolve identically in both.
func (st *StressSpec) rackNames(sc *Scenario) ([]string, map[string][]int, error) {
	tmpls := make(map[string][]int)
	var names []string
	if g := st.FleetGen; g != nil {
		weights := make([]float64, len(g.Templates))
		for i, t := range g.Templates {
			weights[i] = t.Weight
		}
		counts := apportion(g.Racks, weights)
		for ti, t := range g.Templates {
			for j := 0; j < counts[ti]; j++ {
				tmpls[t.Name] = append(tmpls[t.Name], len(names))
				names = append(names, fmt.Sprintf("%s-%04d", t.Name, j))
			}
		}
		return names, tmpls, nil
	}
	for _, tmpl := range sc.Fleet.Racks {
		count := tmpl.Count
		if count == 0 {
			count = 1
		}
		for j := 0; j < count; j++ {
			name := tmpl.Name
			if count > 1 {
				name = fmt.Sprintf("%s-%d", tmpl.Name, j)
			}
			tmpls[tmpl.Name] = append(tmpls[tmpl.Name], len(names))
			names = append(names, name)
		}
	}
	return names, tmpls, nil
}

// resolveRacks maps target names (template names or exact rack names)
// to sorted unique rack indices; nil in, nil out (the whole fleet).
func resolveRacks(targets []string, names []string, tmpls map[string][]int) ([]int, error) {
	if len(targets) == 0 {
		return nil, nil
	}
	set := make(map[int]bool)
	for _, t := range targets {
		if idxs, ok := tmpls[t]; ok {
			for _, i := range idxs {
				set[i] = true
			}
			continue
		}
		i, err := resolveOneRack(t, names)
		if err != nil {
			return nil, err
		}
		set[i] = true
	}
	out := make([]int, 0, len(set))
	for i := range set {
		out = append(out, i)
	}
	sort.Ints(out)
	return out, nil
}

func resolveOneRack(target string, names []string) (int, error) {
	for i, n := range names {
		if n == target {
			return i, nil
		}
	}
	return 0, fmt.Errorf("no rack or template named %q", target)
}

// BuildStorm resolves a stress scenario into a runnable storm
// configuration for chaos.Run.
func (sc *Scenario) BuildStorm() (chaos.StormConfig, error) {
	if sc.Stress == nil {
		return chaos.StormConfig{}, fmt.Errorf("%w: not a stress scenario; use Build or BuildFleet", ErrBadScenario)
	}
	st := sc.Stress

	var (
		fleet cluster.Config
		err   error
	)
	if g := st.FleetGen; g != nil {
		weights := make([]float64, len(g.Templates))
		for i, t := range g.Templates {
			weights[i] = t.Weight
		}
		counts := apportion(g.Racks, weights)
		var racks []cluster.RackConfig
		for ti, t := range g.Templates {
			p, err := policy.ByName(t.Policy)
			if err != nil {
				return chaos.StormConfig{}, fmt.Errorf("scenario: template %q: %w", t.Name, err)
			}
			for j := 0; j < counts[ti]; j++ {
				name := fmt.Sprintf("%s-%04d", t.Name, j)
				rack, groupWs, err := buildRack(name, t.Groups)
				if err != nil {
					return chaos.StormConfig{}, fmt.Errorf("scenario: template %q: %w", t.Name, err)
				}
				racks = append(racks, cluster.RackConfig{
					Rack:           rack,
					GroupWorkloads: groupWs,
					Policy:         p,
				})
			}
		}
		fleet, err = sc.siteConfig(racks)
	} else {
		fleet, err = sc.BuildFleet()
	}
	if err != nil {
		return chaos.StormConfig{}, err
	}
	if b := st.Breaker; b != nil {
		fleet.Breaker = &cluster.BreakerConfig{
			FailureThreshold: b.FailureThreshold,
			CooldownEpochs:   b.CooldownEpochs,
		}
	}

	names, tmpls, err := st.rackNames(sc)
	if err != nil {
		return chaos.StormConfig{}, err
	}
	ccfg := chaos.Config{
		Racks:   len(names),
		Names:   names,
		Zones:   st.Zones,
		Epochs:  sc.Epochs,
		Seed:    sc.Seed,
		WALRack: -1,
	}
	if ccfg.Zones == 0 {
		ccfg.Zones = 4
	}
	if st.WALRack != "" {
		i, err := resolveOneRack(st.WALRack, names)
		if err != nil {
			return chaos.StormConfig{}, fmt.Errorf("scenario: stress walRack: %w", err)
		}
		ccfg.WALRack = i
	}
	if g := st.FleetGen; g != nil && g.Startup != nil {
		s := g.Startup
		joins, err := chaos.JoinEpochs(len(names), s.Pattern, s.RampEpochs, s.Waves, s.JitterFrac, sc.Seed)
		if err != nil {
			return chaos.StormConfig{}, fmt.Errorf("scenario: startup: %w", err)
		}
		ccfg.JoinEpochs = joins
	}
	for _, ev := range st.Chaos {
		racks, err := resolveRacks(ev.Racks, names, tmpls)
		if err != nil {
			return chaos.StormConfig{}, fmt.Errorf("scenario: chaos event %s: %w", ev.Kind, err)
		}
		ccfg.Events = append(ccfg.Events, chaos.Event{
			Kind:            ev.Kind,
			At:              ev.AtEpoch,
			Duration:        ev.Duration,
			Racks:           racks,
			Zone:            ev.Zone,
			Fanout:          ev.Fanout,
			Depth:           ev.Depth,
			RecoveryEpochs:  ev.RecoveryEpochs,
			JitterFrac:      ev.JitterFrac,
			DepthFrac:       ev.DepthFrac,
			WidthRacks:      ev.WidthRacks,
			PriceScale:      ev.PriceScale,
			GridBudgetScale: ev.GridBudgetScale,
			FadeFrac:        ev.FadeFrac,
			IntensityScale:  ev.IntensityScale,
		})
	}
	return chaos.StormConfig{
		Name:          sc.Name,
		Fleet:         fleet,
		Chaos:         ccfg,
		SLOSupplyFrac: st.SLOSupplyFrac,
		SnapshotEvery: st.SnapshotEvery,
	}, nil
}
