package scenario

import (
	"errors"
	"strings"
	"testing"

	"greenhetero/internal/cluster"
)

const fleetDoc = `{
  "name": "small-site",
  "solar": {"profile": "high", "peakWatts": 90000, "days": 2, "seed": 1},
  "epochs": 96,
  "seed": 7,
  "initialSoC": 0.9,
  "fleet": {
    "allocator": "hierarchical-par",
    "siteGridBudgetW": 16000,
    "siteBattery": {"capacityWh": 200000},
    "racks": [
      {"name": "web", "count": 3, "policy": "GreenHetero",
       "groups": [{"server": "e5-2620", "count": 5, "workload": "specjbb"}]},
      {"name": "batch", "policy": "GreenHetero",
       "groups": [{"server": "i5-4460", "count": 8, "workload": "canneal"}]}
    ]
  }
}`

func TestParseAndBuildFleet(t *testing.T) {
	sc, err := Parse(strings.NewReader(fleetDoc))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := sc.BuildFleet()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Racks) != 4 {
		t.Fatalf("racks = %d, want 3 web replicas + 1 batch", len(cfg.Racks))
	}
	wantNames := []string{"web-0", "web-1", "web-2", "batch"}
	for i, want := range wantNames {
		if got := cfg.Racks[i].Rack.Name(); got != want {
			t.Errorf("rack %d = %q, want %q", i, got, want)
		}
		if len(cfg.Racks[i].GroupWorkloads) != cfg.Racks[i].Rack.NumGroups() {
			t.Errorf("rack %d group workloads misaligned", i)
		}
	}
	if cfg.Allocator.Name() != "hierarchical-par" {
		t.Errorf("allocator = %q", cfg.Allocator.Name())
	}
	if cfg.SiteBattery.CapacityWh != 200000 || cfg.SiteBattery.DepthOfDischarge != 0.40 || cfg.SiteBattery.Efficiency != 0.80 {
		t.Errorf("site battery = %+v, want defaults filled", cfg.SiteBattery)
	}
	if cfg.SiteGridBudgetW != 16000 || cfg.Epochs != 96 || cfg.Seed != 7 || cfg.InitialSoC != 0.9 {
		t.Errorf("site fields: %+v", cfg)
	}
	// The built config must be runnable end to end.
	cfg.Epochs = 4
	if _, err := cluster.Run(cfg); err != nil {
		t.Fatalf("built fleet does not run: %v", err)
	}
	// A fleet scenario cannot build as a single rack, and vice versa.
	if _, err := sc.Build(); !errors.Is(err, ErrBadScenario) {
		t.Errorf("Build on fleet scenario: %v", err)
	}
	single := &Scenario{}
	if _, err := single.BuildFleet(); !errors.Is(err, ErrBadScenario) {
		t.Errorf("BuildFleet on single-rack scenario: %v", err)
	}
}

func TestFleetValidation(t *testing.T) {
	mutations := []struct {
		name string
		doc  string
	}{
		{"fleet and groups", strings.Replace(fleetDoc, `"fleet": {`,
			`"groups": [{"server": "e5-2620", "count": 5, "workload": "specjbb"}], "fleet": {`, 1)},
		{"no racks", strings.Replace(fleetDoc, `"racks": [`, `"racks2": [`, 1)},
		{"missing rack name", strings.Replace(fleetDoc, `"name": "web", `, ``, 1)},
		{"missing rack policy", strings.Replace(fleetDoc, `"policy": "GreenHetero",
       "groups": [{"server": "e5-2620", "count": 5, "workload": "specjbb"}]`, `"groups": [{"server": "e5-2620", "count": 5, "workload": "specjbb"}]`, 1)},
	}
	for _, tt := range mutations {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(tt.doc)); err == nil {
				t.Errorf("doc parsed: %s", tt.doc)
			}
		})
	}
}

func TestFleetUnknownAllocator(t *testing.T) {
	doc := strings.Replace(fleetDoc, "hierarchical-par", "nope", 1)
	sc, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.BuildFleet(); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("unknown allocator: %v", err)
	}
}
