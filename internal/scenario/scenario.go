// Package scenario loads simulation scenarios from JSON files, so
// operators can describe racks (including mixed per-group workloads),
// traces, and power infrastructure declaratively instead of through CLI
// flags:
//
//	{
//	  "name": "mixed-rack-demo",
//	  "groups": [
//	    {"server": "e5-2620", "count": 5, "workload": "specjbb"},
//	    {"server": "i5-4460", "count": 5, "workload": "memcached"}
//	  ],
//	  "policy": "GreenHetero",
//	  "solar": {"profile": "high", "peakWatts": 2200, "days": 7, "seed": 1},
//	  "epochs": 96,
//	  "gridBudgetW": 1000,
//	  "initialSoC": 1.0,
//	  "seed": 7
//	}
//
// A "traceFile" path (CSV written by ghtrace) may replace the "solar"
// generator block.
package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"greenhetero/internal/policy"
	"greenhetero/internal/server"
	"greenhetero/internal/sim"
	"greenhetero/internal/solar"
	"greenhetero/internal/trace"
	"greenhetero/internal/workload"
)

// GroupSpec is one rack group in the scenario file.
type GroupSpec struct {
	Server   string `json:"server"`
	Count    int    `json:"count"`
	Workload string `json:"workload"`
}

// SolarSpec configures the synthetic trace generator.
type SolarSpec struct {
	Profile   string  `json:"profile"`
	PeakWatts float64 `json:"peakWatts"`
	Days      int     `json:"days"`
	Seed      int64   `json:"seed"`
}

// Scenario is the file schema. Either the single-rack fields (Groups,
// Policy, GridBudgetW) or the Fleet block is set, never both.
type Scenario struct {
	Name        string      `json:"name"`
	Groups      []GroupSpec `json:"groups,omitempty"`
	Policy      string      `json:"policy,omitempty"`
	Solar       *SolarSpec  `json:"solar,omitempty"`
	TraceFile   string      `json:"traceFile,omitempty"`
	Epochs      int         `json:"epochs"`
	GridBudgetW float64     `json:"gridBudgetW,omitempty"`
	InitialSoC  float64     `json:"initialSoC,omitempty"`
	Seed        int64       `json:"seed,omitempty"`
	// Fleet describes a multi-rack site run (see fleet.go).
	Fleet *FleetSpec `json:"fleet,omitempty"`
	// Stress turns a fleet scenario into a seeded failure storm (see
	// stress.go): generated heterogeneous fleets plus a chaos schedule.
	Stress *StressSpec `json:"stress,omitempty"`
}

// ErrBadScenario is returned for structurally invalid scenarios.
var ErrBadScenario = errors.New("scenario: bad scenario")

// Parse decodes a scenario document.
func Parse(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("scenario: decode: %w", err)
	}
	if err := sc.validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// LoadFile reads and parses a scenario file.
func LoadFile(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	return Parse(f)
}

func (sc *Scenario) validate() error {
	switch {
	case sc.Name == "":
		return fmt.Errorf("%w: missing name", ErrBadScenario)
	case sc.Epochs < 1:
		return fmt.Errorf("%w: epochs %d", ErrBadScenario, sc.Epochs)
	case sc.Solar == nil && sc.TraceFile == "":
		return fmt.Errorf("%w: need solar generator or traceFile", ErrBadScenario)
	case sc.Solar != nil && sc.TraceFile != "":
		return fmt.Errorf("%w: solar and traceFile are mutually exclusive", ErrBadScenario)
	}
	if sc.Stress != nil && sc.Fleet == nil {
		return fmt.Errorf("%w: stress requires a fleet block", ErrBadScenario)
	}
	if sc.Fleet != nil {
		if len(sc.Groups) != 0 || sc.Policy != "" || sc.GridBudgetW != 0 {
			return fmt.Errorf("%w: fleet and single-rack fields (groups/policy/gridBudgetW) are mutually exclusive", ErrBadScenario)
		}
		generated := sc.Stress != nil && sc.Stress.FleetGen != nil
		if err := sc.Fleet.validate(generated); err != nil {
			return err
		}
		if sc.Stress != nil {
			return sc.Stress.validate(sc)
		}
		return nil
	}
	switch {
	case len(sc.Groups) == 0:
		return fmt.Errorf("%w: no groups", ErrBadScenario)
	case sc.Policy == "":
		return fmt.Errorf("%w: missing policy", ErrBadScenario)
	}
	return nil
}

// Build resolves a single-rack scenario into a runnable simulation
// config. Fleet scenarios build through BuildFleet instead.
func (sc *Scenario) Build() (sim.Config, error) {
	if sc.Fleet != nil {
		return sim.Config{}, fmt.Errorf("%w: fleet scenario; use BuildFleet", ErrBadScenario)
	}
	rack, sorted, err := buildRack(sc.Name, sc.Groups)
	if err != nil {
		return sim.Config{}, err
	}
	p, err := policy.ByName(sc.Policy)
	if err != nil {
		return sim.Config{}, fmt.Errorf("scenario: %w", err)
	}
	tr, err := sc.buildTrace()
	if err != nil {
		return sim.Config{}, err
	}
	return sim.Config{
		Rack:           rack,
		GroupWorkloads: sorted,
		Policy:         p,
		Solar:          tr,
		Epochs:         sc.Epochs,
		GridBudgetW:    sc.GridBudgetW,
		InitialSoC:     sc.InitialSoC,
		Seed:           sc.Seed,
	}, nil
}

// buildRack resolves group specs into a rack and its aligned per-group
// workloads (NewRack sorts groups by server id, so the workloads are
// realigned to match).
func buildRack(name string, specs []GroupSpec) (*server.Rack, []workload.Workload, error) {
	groups := make([]server.Group, 0, len(specs))
	groupWs := make([]workload.Workload, 0, len(specs))
	for i, g := range specs {
		spec, err := server.Lookup(g.Server)
		if err != nil {
			return nil, nil, fmt.Errorf("scenario: group %d: %w", i, err)
		}
		w, err := workload.Lookup(g.Workload)
		if err != nil {
			return nil, nil, fmt.Errorf("scenario: group %d: %w", i, err)
		}
		groups = append(groups, server.Group{Spec: spec, Count: g.Count})
		groupWs = append(groupWs, w)
	}
	rack, err := server.NewRack(name, groups...)
	if err != nil {
		return nil, nil, fmt.Errorf("scenario: %w", err)
	}
	sorted := make([]workload.Workload, 0, len(groupWs))
	for _, g := range rack.Groups() {
		for i, spec := range specs {
			if spec.Server == g.Spec.ID {
				sorted = append(sorted, groupWs[i])
				break
			}
		}
	}
	return rack, sorted, nil
}

// buildTrace resolves the scenario's solar generator or trace file.
func (sc *Scenario) buildTrace() (*trace.Trace, error) {
	if sc.Solar != nil {
		profile, err := solar.ParseProfile(sc.Solar.Profile)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		days := sc.Solar.Days
		if days == 0 {
			days = 7
		}
		tr, err := solar.Generate(solar.Config{
			Profile:   profile,
			PeakWatts: sc.Solar.PeakWatts,
			Days:      days,
			Step:      15 * time.Minute,
			Seed:      sc.Solar.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		return tr, nil
	}
	f, err := os.Open(sc.TraceFile)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	tr, err := trace.ReadCSV(f, sc.TraceFile, 15*time.Minute)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return tr, nil
}
