// Fleet scenarios: a declarative multi-rack site run for the cluster
// coordinator. Rack templates expand by replica count, and the site
// block names the allocator, the shared battery, and the grid cap:
//
//	{
//	  "name": "small-site",
//	  "solar": {"profile": "high", "peakWatts": 90000, "days": 2, "seed": 1},
//	  "epochs": 96,
//	  "seed": 7,
//	  "fleet": {
//	    "allocator": "hierarchical-par",
//	    "siteGridBudgetW": 16000,
//	    "siteBattery": {"capacityWh": 200000},
//	    "racks": [
//	      {"name": "web", "count": 12, "policy": "GreenHetero",
//	       "groups": [{"server": "e5-2620", "count": 5, "workload": "specjbb"}]},
//	      {"name": "batch", "count": 4, "policy": "GreenHetero",
//	       "groups": [{"server": "i5-4460", "count": 8, "workload": "canneal"}]}
//	    ]
//	  }
//	}
package scenario

import (
	"fmt"

	"greenhetero/internal/battery"
	"greenhetero/internal/cluster"
	"greenhetero/internal/policy"
)

// FleetRackSpec is one rack template; Count expands it into replicas
// named "<name>-<i>".
type FleetRackSpec struct {
	Name   string      `json:"name"`
	Count  int         `json:"count,omitempty"` // replicas; 0 means 1
	Groups []GroupSpec `json:"groups"`
	Policy string      `json:"policy"`
}

// BatterySpec configures the shared site bank. Zero DoD and efficiency
// take the paper's defaults (0.40, 0.80).
type BatterySpec struct {
	CapacityWh       float64 `json:"capacityWh"`
	DepthOfDischarge float64 `json:"depthOfDischarge,omitempty"`
	Efficiency       float64 `json:"efficiency,omitempty"`
	MaxChargeW       float64 `json:"maxChargeW,omitempty"`
	MaxDischargeW    float64 `json:"maxDischargeW,omitempty"`
}

// FleetSpec is the scenario file's fleet block.
type FleetSpec struct {
	Racks           []FleetRackSpec `json:"racks"`
	Allocator       string          `json:"allocator,omitempty"` // default "uniform"
	SiteBattery     *BatterySpec    `json:"siteBattery,omitempty"`
	SiteGridBudgetW float64         `json:"siteGridBudgetW,omitempty"`
}

// validate checks the fleet block. With a stress fleet generator
// (generated), the explicit rack list must be absent — the generator
// supplies the racks instead.
func (f *FleetSpec) validate(generated bool) error {
	if generated {
		if len(f.Racks) != 0 {
			return fmt.Errorf("%w: fleet.racks and stress.fleetGen are mutually exclusive", ErrBadScenario)
		}
		return nil
	}
	if len(f.Racks) == 0 {
		return fmt.Errorf("%w: fleet has no racks", ErrBadScenario)
	}
	for i, r := range f.Racks {
		switch {
		case r.Name == "":
			return fmt.Errorf("%w: fleet rack %d missing name", ErrBadScenario, i)
		case len(r.Groups) == 0:
			return fmt.Errorf("%w: fleet rack %q has no groups", ErrBadScenario, r.Name)
		case r.Policy == "":
			return fmt.Errorf("%w: fleet rack %q missing policy", ErrBadScenario, r.Name)
		case r.Count < 0:
			return fmt.Errorf("%w: fleet rack %q count %d", ErrBadScenario, r.Name, r.Count)
		}
	}
	return nil
}

// BuildFleet resolves a fleet scenario into a cluster configuration.
// Stress scenarios with a fleet generator build through BuildStorm
// instead.
func (sc *Scenario) BuildFleet() (cluster.Config, error) {
	if sc.Fleet == nil {
		return cluster.Config{}, fmt.Errorf("%w: not a fleet scenario; use Build", ErrBadScenario)
	}
	f := sc.Fleet

	var racks []cluster.RackConfig
	for _, tmpl := range f.Racks {
		p, err := policy.ByName(tmpl.Policy)
		if err != nil {
			return cluster.Config{}, fmt.Errorf("scenario: fleet rack %q: %w", tmpl.Name, err)
		}
		count := tmpl.Count
		if count == 0 {
			count = 1
		}
		for j := 0; j < count; j++ {
			name := tmpl.Name
			if count > 1 {
				name = fmt.Sprintf("%s-%d", tmpl.Name, j)
			}
			rack, groupWs, err := buildRack(name, tmpl.Groups)
			if err != nil {
				return cluster.Config{}, fmt.Errorf("scenario: fleet rack %q: %w", name, err)
			}
			racks = append(racks, cluster.RackConfig{
				Rack:           rack,
				GroupWorkloads: groupWs,
				Policy:         p,
			})
		}
	}
	return sc.siteConfig(racks)
}

// siteConfig assembles the cluster configuration around an already
// expanded rack list (explicit fleet racks or a stress generator's).
func (sc *Scenario) siteConfig(racks []cluster.RackConfig) (cluster.Config, error) {
	f := sc.Fleet

	var alloc cluster.Allocator
	if f.Allocator != "" {
		a, err := cluster.AllocatorByName(f.Allocator)
		if err != nil {
			return cluster.Config{}, fmt.Errorf("scenario: %w", err)
		}
		alloc = a
	}

	var siteBattery battery.Config
	if b := f.SiteBattery; b != nil {
		siteBattery = battery.Config{
			CapacityWh:       b.CapacityWh,
			DepthOfDischarge: b.DepthOfDischarge,
			Efficiency:       b.Efficiency,
			MaxChargeW:       b.MaxChargeW,
			MaxDischargeW:    b.MaxDischargeW,
		}
		if siteBattery.DepthOfDischarge == 0 {
			siteBattery.DepthOfDischarge = 0.40
		}
		if siteBattery.Efficiency == 0 {
			siteBattery.Efficiency = 0.80
		}
	}

	tr, err := sc.buildTrace()
	if err != nil {
		return cluster.Config{}, err
	}
	return cluster.Config{
		Racks:           racks,
		Solar:           tr,
		Allocator:       alloc,
		SiteBattery:     siteBattery,
		SiteGridBudgetW: f.SiteGridBudgetW,
		InitialSoC:      sc.InitialSoC,
		Epochs:          sc.Epochs,
		Seed:            sc.Seed,
	}, nil
}
