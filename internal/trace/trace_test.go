package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)

func mustNew(t *testing.T, values []float64) *Trace {
	t.Helper()
	tr, err := New("test", t0, 15*time.Minute, values)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	if _, err := New("x", t0, 0, nil); !errors.Is(err, ErrBadStep) {
		t.Errorf("err = %v, want ErrBadStep", err)
	}
	if _, err := New("x", t0, -time.Second, nil); !errors.Is(err, ErrBadStep) {
		t.Errorf("err = %v, want ErrBadStep", err)
	}
}

func TestNewCopiesValues(t *testing.T) {
	src := []float64{1, 2, 3}
	tr := mustNew(t, src)
	src[0] = 99
	if tr.Values[0] != 1 {
		t.Error("New must copy its input slice")
	}
}

func TestTimeAtAndDuration(t *testing.T) {
	tr := mustNew(t, []float64{1, 2, 3, 4})
	if got := tr.TimeAt(2); !got.Equal(t0.Add(30 * time.Minute)) {
		t.Errorf("TimeAt(2) = %v", got)
	}
	if got := tr.Duration(); got != time.Hour {
		t.Errorf("Duration() = %v, want 1h", got)
	}
}

func TestAtClamping(t *testing.T) {
	tr := mustNew(t, []float64{10, 20, 30})
	tests := []struct {
		i    int
		want float64
	}{{-5, 10}, {0, 10}, {1, 20}, {2, 30}, {99, 30}}
	for _, tt := range tests {
		if got := tr.At(tt.i); got != tt.want {
			t.Errorf("At(%d) = %v, want %v", tt.i, got, tt.want)
		}
	}
	empty := mustNew(t, nil)
	if got := empty.At(0); got != 0 {
		t.Errorf("empty At(0) = %v, want 0", got)
	}
}

func TestSlice(t *testing.T) {
	tr := mustNew(t, []float64{0, 1, 2, 3, 4, 5})
	sub, err := tr.Slice(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 3 || sub.Values[0] != 2 {
		t.Errorf("Slice = %+v", sub.Values)
	}
	if !sub.Start.Equal(t0.Add(30 * time.Minute)) {
		t.Errorf("Slice start = %v", sub.Start)
	}
	if _, err := tr.Slice(4, 2); err == nil {
		t.Error("inverted slice should error")
	}
	if _, err := tr.Slice(0, 99); err == nil {
		t.Error("overflow slice should error")
	}
}

func TestScaleAndClip(t *testing.T) {
	tr := mustNew(t, []float64{-1, 0, 2})
	s := tr.Scale(3)
	if s.Values[2] != 6 || tr.Values[2] != 2 {
		t.Errorf("Scale mutated input or wrong: %v", s.Values)
	}
	c := tr.Clip(0, 1)
	want := []float64{0, 0, 1}
	for i := range want {
		if c.Values[i] != want[i] {
			t.Errorf("Clip[%d] = %v, want %v", i, c.Values[i], want[i])
		}
	}
}

func TestDownsample(t *testing.T) {
	tr := mustNew(t, []float64{1, 3, 5, 7, 9})
	d, err := tr.Downsample(2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 6, 9} // pairs averaged, tail singleton
	if len(d.Values) != len(want) {
		t.Fatalf("len = %d, want %d", len(d.Values), len(want))
	}
	for i := range want {
		if d.Values[i] != want[i] {
			t.Errorf("Downsample[%d] = %v, want %v", i, d.Values[i], want[i])
		}
	}
	if d.Step != 30*time.Minute {
		t.Errorf("step = %v, want 30m", d.Step)
	}
	if _, err := tr.Downsample(0); !errors.Is(err, ErrBadResample) {
		t.Errorf("err = %v, want ErrBadResample", err)
	}
}

func TestSummarize(t *testing.T) {
	tr := mustNew(t, []float64{4, -2, 10})
	s, err := tr.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Min != -2 || s.Max != 10 || s.N != 3 || math.Abs(s.Mean-4) > 1e-12 {
		t.Errorf("Summarize = %+v", s)
	}
	if _, err := mustNew(t, nil).Summarize(); !errors.Is(err, ErrEmpty) {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := mustNew(t, []float64{0.5, 1.25, 700})
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "test", 15*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() || !got.Start.Equal(tr.Start) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, tr)
	}
	for i := range tr.Values {
		if got.Values[i] != tr.Values[i] {
			t.Errorf("value[%d] = %v, want %v", i, got.Values[i], tr.Values[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,b,c\n1,notatime,2\n"), "x", time.Minute); err == nil {
		t.Error("bad timestamp should error")
	}
	if _, err := ReadCSV(strings.NewReader("a,b,c\n1,2021-06-01T00:00:00Z,xyz\n"), "x", time.Minute); err == nil {
		t.Error("bad value should error")
	}
	if _, err := ReadCSV(strings.NewReader(""), "x", 0); !errors.Is(err, ErrBadStep) {
		t.Error("bad step should error")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := mustNew(t, []float64{1, 2, 3})
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var got Trace
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.Step != tr.Step || !got.Start.Equal(tr.Start) {
		t.Errorf("round trip metadata mismatch: %+v", got)
	}
	if len(got.Values) != 3 || got.Values[2] != 3 {
		t.Errorf("round trip values mismatch: %v", got.Values)
	}
}

func TestJSONBadStep(t *testing.T) {
	var got Trace
	err := json.Unmarshal([]byte(`{"name":"x","start":"2021-06-01T00:00:00Z","stepMillis":0,"values":[]}`), &got)
	if !errors.Is(err, ErrBadStep) {
		t.Errorf("err = %v, want ErrBadStep", err)
	}
}

// Property: Downsample never changes the overall mean (it averages groups,
// and the tail group is weighted by actual size — so compare against the
// group-weighted mean instead of sample mean when tail is partial; with
// factor dividing length they agree exactly).
func TestQuickDownsampleMeanPreserved(t *testing.T) {
	f := func(raw []uint8, factorRaw uint8) bool {
		factor := int(factorRaw%4) + 1
		// Pad to a multiple of factor so means must agree exactly.
		vals := make([]float64, 0, len(raw))
		for _, r := range raw {
			vals = append(vals, float64(r))
		}
		for len(vals)%factor != 0 {
			vals = append(vals, 0)
		}
		if len(vals) == 0 {
			return true
		}
		tr, err := New("q", t0, time.Minute, vals)
		if err != nil {
			return false
		}
		d, err := tr.Downsample(factor)
		if err != nil {
			return false
		}
		s1, err1 := tr.Summarize()
		s2, err2 := d.Summarize()
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(s1.Mean-s2.Mean) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Clip output is always within bounds and idempotent.
func TestQuickClipBoundsIdempotent(t *testing.T) {
	f := func(raw []int8) bool {
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r)
		}
		tr, err := New("q", t0, time.Minute, vals)
		if err != nil {
			return false
		}
		c := tr.Clip(-10, 10)
		for _, v := range c.Values {
			if v < -10 || v > 10 {
				return false
			}
		}
		c2 := c.Clip(-10, 10)
		for i := range c.Values {
			if c.Values[i] != c2.Values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
