// Package trace provides the timestamped power series type shared by the
// solar generator, the rack-demand models, and the experiment harness,
// plus CSV/JSON codecs and resampling helpers.
//
// A Trace is a uniformly-sampled series: a start time, a fixed step, and
// one float64 value per step. The paper's traces (NREL solar irradiance,
// rack demand) are 15-minute series, but the step is configurable.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"time"
)

// Trace is a uniformly-sampled time series.
type Trace struct {
	// Name labels the series (e.g. "solar-high").
	Name string
	// Start is the timestamp of Values[0].
	Start time.Time
	// Step is the sampling interval; must be positive.
	Step time.Duration
	// Values holds one sample per step.
	Values []float64
}

var (
	// ErrBadStep is returned when a non-positive step is supplied.
	ErrBadStep = errors.New("trace: step must be positive")
	// ErrEmpty is returned for operations that need at least one sample.
	ErrEmpty = errors.New("trace: empty trace")
	// ErrBadResample is returned for invalid resampling factors.
	ErrBadResample = errors.New("trace: resample factor must be ≥ 1")
)

// New constructs a trace, validating the step.
func New(name string, start time.Time, step time.Duration, values []float64) (*Trace, error) {
	if step <= 0 {
		return nil, fmt.Errorf("%w: %v", ErrBadStep, step)
	}
	v := make([]float64, len(values))
	copy(v, values)
	return &Trace{Name: name, Start: start, Step: step, Values: v}, nil
}

// Len reports the number of samples.
func (t *Trace) Len() int { return len(t.Values) }

// Duration reports the covered time span (Len × Step).
func (t *Trace) Duration() time.Duration {
	return time.Duration(len(t.Values)) * t.Step
}

// TimeAt returns the timestamp of sample i.
func (t *Trace) TimeAt(i int) time.Time {
	return t.Start.Add(time.Duration(i) * t.Step)
}

// At returns the sample value at index i, clamping the index into range;
// it returns 0 for an empty trace. Clamped access keeps replay loops
// simple when an experiment runs slightly past the trace end.
func (t *Trace) At(i int) float64 {
	if len(t.Values) == 0 {
		return 0
	}
	if i < 0 {
		i = 0
	}
	if i >= len(t.Values) {
		i = len(t.Values) - 1
	}
	return t.Values[i]
}

// Slice returns a sub-trace covering samples [from, to).
func (t *Trace) Slice(from, to int) (*Trace, error) {
	if from < 0 || to > len(t.Values) || from > to {
		return nil, fmt.Errorf("trace: slice [%d, %d) out of range 0..%d", from, to, len(t.Values))
	}
	return New(t.Name, t.TimeAt(from), t.Step, t.Values[from:to])
}

// Scale returns a copy with every value multiplied by k.
func (t *Trace) Scale(k float64) *Trace {
	out := &Trace{Name: t.Name, Start: t.Start, Step: t.Step, Values: make([]float64, len(t.Values))}
	for i, v := range t.Values {
		out.Values[i] = v * k
	}
	return out
}

// Clip returns a copy with every value clamped into [lo, hi].
func (t *Trace) Clip(lo, hi float64) *Trace {
	out := &Trace{Name: t.Name, Start: t.Start, Step: t.Step, Values: make([]float64, len(t.Values))}
	for i, v := range t.Values {
		switch {
		case v < lo:
			out.Values[i] = lo
		case v > hi:
			out.Values[i] = hi
		default:
			out.Values[i] = v
		}
	}
	return out
}

// Downsample returns a copy with every group of factor samples averaged
// into one (partial tail groups are averaged over their actual size).
func (t *Trace) Downsample(factor int) (*Trace, error) {
	if factor < 1 {
		return nil, fmt.Errorf("%w: %d", ErrBadResample, factor)
	}
	out := &Trace{Name: t.Name, Start: t.Start, Step: t.Step * time.Duration(factor)}
	for i := 0; i < len(t.Values); i += factor {
		end := i + factor
		if end > len(t.Values) {
			end = len(t.Values)
		}
		var sum float64
		for _, v := range t.Values[i:end] {
			sum += v
		}
		out.Values = append(out.Values, sum/float64(end-i))
	}
	return out, nil
}

// Stats summarizes a trace.
type Stats struct {
	Min, Max, Mean float64
	N              int
}

// Summarize computes min/max/mean.
func (t *Trace) Summarize() (Stats, error) {
	if len(t.Values) == 0 {
		return Stats{}, ErrEmpty
	}
	s := Stats{Min: t.Values[0], Max: t.Values[0], N: len(t.Values)}
	var sum float64
	for _, v := range t.Values {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		sum += v
	}
	s.Mean = sum / float64(s.N)
	return s, nil
}

// WriteCSV writes "index,timestamp,value" rows with a header.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"index", "timestamp", "value"}); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for i, v := range t.Values {
		rec := []string{
			strconv.Itoa(i),
			t.TimeAt(i).UTC().Format(time.RFC3339),
			strconv.FormatFloat(v, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// ReadCSV parses a trace written by WriteCSV. Name and step must be
// supplied by the caller (CSV stores timestamps, not metadata).
func ReadCSV(r io.Reader, name string, step time.Duration) (*Trace, error) {
	if step <= 0 {
		return nil, fmt.Errorf("%w: %v", ErrBadStep, step)
	}
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: read csv: %w", err)
	}
	if len(rows) < 1 {
		return nil, ErrEmpty
	}
	tr := &Trace{Name: name, Step: step}
	for i, row := range rows[1:] {
		if len(row) != 3 {
			return nil, fmt.Errorf("trace: row %d: want 3 fields, got %d", i, len(row))
		}
		if i == 0 {
			ts, err := time.Parse(time.RFC3339, row[1])
			if err != nil {
				return nil, fmt.Errorf("trace: row %d timestamp: %w", i, err)
			}
			tr.Start = ts
		}
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d value: %w", i, err)
		}
		tr.Values = append(tr.Values, v)
	}
	return tr, nil
}

// traceJSON is the stable wire form of a Trace.
type traceJSON struct {
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	StepMillis int64     `json:"stepMillis"`
	Values     []float64 `json:"values"`
}

// MarshalJSON implements json.Marshaler with an explicit step unit.
func (t *Trace) MarshalJSON() ([]byte, error) {
	return json.Marshal(traceJSON{
		Name:       t.Name,
		Start:      t.Start,
		StepMillis: t.Step.Milliseconds(),
		Values:     t.Values,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *Trace) UnmarshalJSON(data []byte) error {
	var tj traceJSON
	if err := json.Unmarshal(data, &tj); err != nil {
		return fmt.Errorf("trace: unmarshal: %w", err)
	}
	if tj.StepMillis <= 0 {
		return fmt.Errorf("%w: %dms", ErrBadStep, tj.StepMillis)
	}
	t.Name = tj.Name
	t.Start = tj.Start
	t.Step = time.Duration(tj.StepMillis) * time.Millisecond
	t.Values = tj.Values
	return nil
}
