package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// FuzzReadCSV hardens the CSV decoder against malformed input: it must
// either return an error or a structurally valid trace — never panic.
func FuzzReadCSV(f *testing.F) {
	f.Add("index,timestamp,value\n0,2021-06-01T00:00:00Z,1.5\n")
	f.Add("index,timestamp,value\n0,2021-06-01T00:00:00Z,1.5\n1,2021-06-01T00:15:00Z,2\n")
	f.Add("")
	f.Add("a,b\n1,2\n")
	f.Add("index,timestamp,value\n0,notatime,1\n")
	f.Add("index,timestamp,value\n0,2021-06-01T00:00:00Z,NaNb\n")
	f.Add("index,timestamp,value\n\"0,2021")
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadCSV(strings.NewReader(data), "fuzz", 15*time.Minute)
		if err != nil {
			return
		}
		if tr.Step != 15*time.Minute {
			t.Fatalf("step = %v", tr.Step)
		}
		// A successfully parsed trace must round-trip through WriteCSV.
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatalf("write after read: %v", err)
		}
	})
}

// FuzzJSONRoundTrip hardens the JSON codec.
func FuzzJSONRoundTrip(f *testing.F) {
	f.Add([]byte(`{"name":"x","start":"2021-06-01T00:00:00Z","stepMillis":900000,"values":[1,2,3]}`))
	f.Add([]byte(`{"stepMillis":0}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var tr Trace
		if err := tr.UnmarshalJSON(data); err != nil {
			return
		}
		if tr.Step <= 0 {
			t.Fatalf("accepted non-positive step %v", tr.Step)
		}
		if _, err := tr.MarshalJSON(); err != nil {
			t.Fatalf("marshal after unmarshal: %v", err)
		}
	})
}
