package policy

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"greenhetero/internal/fit"
	"greenhetero/internal/profiledb"
	"greenhetero/internal/server"
	"greenhetero/internal/workload"
)

// trainDB populates a database from the ground truth for the given rack
// groups and workload, emulating completed training runs.
func trainDB(t testing.TB, groups []server.Group, w workload.Workload) *profiledb.DB {
	t.Helper()
	db := profiledb.New()
	rng := rand.New(rand.NewSource(99))
	for _, g := range groups {
		samples, err := workload.Profile(g.Spec, w, 8, rng)
		if err != nil {
			t.Fatal(err)
		}
		fs := make([]fit.Sample, len(samples))
		for i, s := range samples {
			fs[i] = fit.Sample{X: s.PowerW, Y: s.Perf}
		}
		k := profiledb.Key{ServerID: g.Spec.ID, WorkloadID: w.ID}
		if err := db.AddTrainingRun(k, g.Spec.IdleW, workload.PeakEffW(g.Spec, w), fs); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func testGroups(t testing.TB) []server.Group {
	t.Helper()
	a, err := server.Lookup(server.XeonE52620)
	if err != nil {
		t.Fatal(err)
	}
	b, err := server.Lookup(server.CoreI54460)
	if err != nil {
		t.Fatal(err)
	}
	return []server.Group{{Spec: a, Count: 5}, {Spec: b, Count: 5}}
}

// truePerf evaluates a PAR vector on the hidden truth.
func truePerf(groups []server.Group, w workload.Workload, supply float64, fracs []float64) float64 {
	var total float64
	for i, g := range groups {
		perServer := fracs[i] * supply / float64(g.Count)
		total += float64(g.Count) * workload.Perf(g.Spec, w, perServer)
	}
	return total
}

func mustWorkload(t testing.TB, id string) workload.Workload {
	t.Helper()
	w, err := workload.Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestUniform(t *testing.T) {
	groups := testGroups(t)
	w := mustWorkload(t, workload.SPECjbb)
	fracs, err := Uniform{}.Allocate(Context{Groups: groups, Workload: w, SupplyW: 800})
	if err != nil {
		t.Fatal(err)
	}
	if fracs[0] != 0.5 || fracs[1] != 0.5 {
		t.Errorf("uniform fracs = %v", fracs)
	}
	if (Uniform{}).UpdatesDB() {
		t.Error("Uniform must not update the DB")
	}
}

func TestManualBeatsUniform(t *testing.T) {
	groups := testGroups(t)
	w := mustWorkload(t, workload.SPECjbb)
	supply := 800.0
	ctx := Context{
		Groups: groups, Workload: w, SupplyW: supply,
		TryAllocation: func(fracs []float64) (float64, error) {
			return truePerf(groups, w, supply, fracs), nil
		},
	}
	fracs, err := (&Manual{}).Allocate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got, uni := truePerf(groups, w, supply, fracs), truePerf(groups, w, supply, []float64{0.5, 0.5}); got < uni {
		t.Errorf("manual %v worse than uniform %v", got, uni)
	}
	// Fractions on the 10 % grid.
	for _, f := range fracs {
		if math.Abs(f*10-math.Round(f*10)) > 1e-9 {
			t.Errorf("fraction %v not on 10%% grid", f)
		}
	}
}

func TestManualNeedsCallback(t *testing.T) {
	groups := testGroups(t)
	w := mustWorkload(t, workload.SPECjbb)
	_, err := (&Manual{}).Allocate(Context{Groups: groups, Workload: w, SupplyW: 800})
	if !errors.Is(err, ErrNoTryAllocation) {
		t.Errorf("err = %v, want ErrNoTryAllocation", err)
	}
}

func TestManualThreeGroups(t *testing.T) {
	a, err := server.Lookup(server.XeonE52620)
	if err != nil {
		t.Fatal(err)
	}
	b, err := server.Lookup(server.XeonE52603)
	if err != nil {
		t.Fatal(err)
	}
	c, err := server.Lookup(server.CoreI54460)
	if err != nil {
		t.Fatal(err)
	}
	groups := []server.Group{{Spec: a, Count: 2}, {Spec: b, Count: 2}, {Spec: c, Count: 2}}
	w := mustWorkload(t, workload.SPECjbb)
	supply := 500.0
	var trials int
	ctx := Context{
		Groups: groups, Workload: w, SupplyW: supply,
		TryAllocation: func(fracs []float64) (float64, error) {
			trials++
			return truePerf(groups, w, supply, fracs), nil
		},
	}
	if _, err := (&Manual{}).Allocate(ctx); err != nil {
		t.Fatal(err)
	}
	if trials != 66 { // C(12,2) points on the 10 % simplex
		t.Errorf("trials = %d, want 66", trials)
	}
}

func TestPrioritizedOrdering(t *testing.T) {
	groups := testGroups(t)
	w := mustWorkload(t, workload.SPECjbb)
	db := trainDB(t, groups, w)
	// Supply only enough for the efficient group (i5): the Xeon group
	// must get (almost) nothing.
	supply := 5 * 80.0
	fracs, err := Prioritized{}.Allocate(Context{Groups: groups, Workload: w, SupplyW: supply, DB: db})
	if err != nil {
		t.Fatal(err)
	}
	// Group order: e5-2620 (idx 0), i5-4460 (idx 1). i5 is more
	// efficient → receives nearly everything.
	if fracs[1] < 0.9 {
		t.Errorf("i5 fraction = %v, want ≈ 1", fracs[1])
	}
	if fracs[0] > 0.1 {
		t.Errorf("xeon fraction = %v, want ≈ 0", fracs[0])
	}
}

func TestPrioritizedNotProfiled(t *testing.T) {
	groups := testGroups(t)
	w := mustWorkload(t, workload.SPECjbb)
	_, err := Prioritized{}.Allocate(Context{Groups: groups, Workload: w, SupplyW: 500, DB: profiledb.New()})
	if !errors.Is(err, ErrNotProfiled) {
		t.Errorf("err = %v, want ErrNotProfiled", err)
	}
}

func TestSolverPolicyBeatsUniform(t *testing.T) {
	groups := testGroups(t)
	w := mustWorkload(t, workload.Streamcluster)
	db := trainDB(t, groups, w)
	supply := 700.0
	fracs, err := Solver{Adaptive: true}.Allocate(Context{Groups: groups, Workload: w, SupplyW: supply, DB: db})
	if err != nil {
		t.Fatal(err)
	}
	got := truePerf(groups, w, supply, fracs)
	uni := truePerf(groups, w, supply, []float64{0.5, 0.5})
	if got < uni {
		t.Errorf("solver policy %v worse than uniform %v on the truth", got, uni)
	}
}

func TestSolverPolicyNames(t *testing.T) {
	if (Solver{Adaptive: true}).Name() != "GreenHetero" {
		t.Error("adaptive name")
	}
	if (Solver{}).Name() != "GreenHetero-a" {
		t.Error("non-adaptive name")
	}
	if !(Solver{Adaptive: true}).UpdatesDB() {
		t.Error("GreenHetero must update the DB")
	}
	if (Solver{}).UpdatesDB() {
		t.Error("GreenHetero-a must not update the DB")
	}
}

func TestContextValidation(t *testing.T) {
	w := mustWorkload(t, workload.SPECjbb)
	if _, err := (Solver{}).Allocate(Context{Workload: w, SupplyW: 100}); !errors.Is(err, ErrBadContext) {
		t.Errorf("no groups err = %v", err)
	}
	groups := testGroups(t)
	if _, err := (Solver{}).Allocate(Context{Groups: groups, Workload: w, SupplyW: 100}); !errors.Is(err, ErrBadContext) {
		t.Errorf("nil db err = %v", err)
	}
	if _, err := (&Manual{}).Allocate(Context{}); !errors.Is(err, ErrBadContext) {
		t.Errorf("manual no groups err = %v", err)
	}
}

func TestAllAndByName(t *testing.T) {
	all := All()
	if len(all) != 5 {
		t.Fatalf("All() = %d policies, want 5", len(all))
	}
	wantNames := []string{"Uniform", "Manual", "GreenHetero-p", "GreenHetero-a", "GreenHetero"}
	for i, p := range all {
		if p.Name() != wantNames[i] {
			t.Errorf("All()[%d] = %q, want %q", i, p.Name(), wantNames[i])
		}
		got, err := ByName(p.Name())
		if err != nil || got.Name() != p.Name() {
			t.Errorf("ByName(%q) = %v, %v", p.Name(), got, err)
		}
	}
	if _, err := ByName("Oracle"); err == nil {
		t.Error("unknown name should error")
	}
}

func BenchmarkSolverPolicyAllocate(b *testing.B) {
	groups := testGroups(b)
	w := mustWorkload(b, workload.SPECjbb)
	db := trainDB(b, groups, w)
	ctx := Context{Groups: groups, Workload: w, SupplyW: 800, DB: db}
	p := Solver{Adaptive: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Allocate(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func TestManualReplaysCachedBucket(t *testing.T) {
	groups := testGroups(t)
	w := mustWorkload(t, workload.SPECjbb)
	supply := 800.0
	var trials int
	ctx := Context{
		Groups: groups, Workload: w, SupplyW: supply,
		TryAllocation: func(fracs []float64) (float64, error) {
			trials++
			return truePerf(groups, w, supply, fracs), nil
		},
	}
	m := &Manual{}
	first, err := m.Allocate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	trialsAfterFirst := trials
	// Same supply bucket: no new trials, identical answer.
	second, err := m.Allocate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if trials != trialsAfterFirst {
		t.Errorf("cached call ran %d extra trials", trials-trialsAfterFirst)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("cached ratio differs: %v vs %v", first, second)
		}
	}
	// A different supply level re-trials (new table entry).
	ctx.SupplyW = 500
	if _, err := m.Allocate(ctx); err != nil {
		t.Fatal(err)
	}
	if trials == trialsAfterFirst {
		t.Error("new supply bucket should re-trial")
	}
}

func TestManualCallbackErrorPropagates(t *testing.T) {
	groups := testGroups(t)
	w := mustWorkload(t, workload.SPECjbb)
	ctx := Context{
		Groups: groups, Workload: w, SupplyW: 800,
		TryAllocation: func([]float64) (float64, error) {
			return 0, errors.New("power meter offline")
		},
	}
	if _, err := (&Manual{}).Allocate(ctx); err == nil {
		t.Error("trial failure must propagate")
	}
}

func TestGroupWorkloadsMismatch(t *testing.T) {
	groups := testGroups(t)
	w := mustWorkload(t, workload.SPECjbb)
	db := trainDB(t, groups, w)
	ctx := Context{
		Groups:         groups,
		Workload:       w,
		GroupWorkloads: []workload.Workload{w}, // 1 for 2 groups
		SupplyW:        500,
		DB:             db,
	}
	if _, err := (Solver{}).Allocate(ctx); !errors.Is(err, ErrBadContext) {
		t.Errorf("err = %v, want ErrBadContext", err)
	}
	if _, err := (Prioritized{}).Allocate(ctx); !errors.Is(err, ErrBadContext) {
		t.Errorf("prioritized err = %v, want ErrBadContext", err)
	}
}

func TestGroupWorkloadsMixedAllocation(t *testing.T) {
	groups := testGroups(t)
	jbb := mustWorkload(t, workload.SPECjbb)
	mc := mustWorkload(t, workload.Memcached)
	// Train the DB for the mixed assignment.
	db := trainDB(t, groups[:1], jbb)
	rng := rand.New(rand.NewSource(5))
	samples, err := workload.Profile(groups[1].Spec, mc, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	fs := make([]fit.Sample, len(samples))
	for i, s := range samples {
		fs[i] = fit.Sample{X: s.PowerW, Y: s.Perf}
	}
	k := profiledb.Key{ServerID: groups[1].Spec.ID, WorkloadID: mc.ID}
	if err := db.AddTrainingRun(k, groups[1].Spec.IdleW, workload.PeakEffW(groups[1].Spec, mc), fs); err != nil {
		t.Fatal(err)
	}
	ctx := Context{
		Groups:         groups,
		Workload:       jbb,
		GroupWorkloads: []workload.Workload{jbb, mc},
		SupplyW:        700,
		DB:             db,
	}
	fracs, err := (Solver{Adaptive: true}).Allocate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, f := range fracs {
		sum += f
	}
	if sum <= 0 || sum > 1+1e-9 {
		t.Errorf("fractions = %v", fracs)
	}
}
