// Package policy implements the five power-allocation policies compared
// in the paper's evaluation (Table III):
//
//	Uniform       — heterogeneity-oblivious even split per server
//	Manual        — tries every allocation at 10 % granularity on the
//	                live system and keeps the best
//	GreenHetero-p — greedy by energy-efficiency ordering from the database
//	GreenHetero-a — database-driven solver without runtime updates
//	GreenHetero   — database-driven solver with adaptive updates
//
// GreenHetero-a and GreenHetero share the same allocation logic; what
// separates them is whether the simulator feeds runtime samples back into
// the database (UpdatesDB), i.e. Algorithm 1 lines 8–10.
package policy

import (
	"errors"
	"fmt"
	"sort"

	"greenhetero/internal/profiledb"
	"greenhetero/internal/server"
	"greenhetero/internal/solver"
	"greenhetero/internal/workload"
)

// Context carries everything a policy may consult for one decision.
type Context struct {
	// Groups are the rack's server groups (sorted, from server.Rack).
	Groups []server.Group
	// Workload is the running workload.
	Workload workload.Workload
	// GroupWorkloads, when non-nil, assigns each rack group its own
	// workload (mixed racks); it must have one entry per group. Nil
	// means every group runs Workload.
	GroupWorkloads []workload.Workload
	// SupplyW is the epoch's power supply to split.
	SupplyW float64
	// DB is the performance-power database (used by the GreenHetero
	// family; nil for Uniform).
	DB *profiledb.DB
	// TryAllocation evaluates a candidate PAR vector on the live system
	// and returns its measured aggregate throughput. Only the Manual
	// policy uses it — that is exactly how the paper's Manual baseline
	// works (static trial of every 10 % split).
	TryAllocation func(fractions []float64) (float64, error)
	// Scratch, when non-nil, lets the database-driven policies reuse
	// working memory (projection entries, solver models, the warm solver
	// cache) across epochs instead of reallocating per decision. Results
	// are bit-identical with or without it. A Scratch must not be shared
	// across concurrent allocations; the controller owns one per run.
	Scratch *Scratch
}

// Scratch is reusable working memory for the per-epoch allocation hot
// path. Its lifetime is one controller (one simulated run): the embedded
// warm solver memoizes on the full model/supply/options input, so reuse
// across epochs — or even across different racks — can never return a
// stale result, only skip redundant searches.
type Scratch struct {
	warm    solver.Warm
	entries []profiledb.Entry
	models  []solver.GroupModel
}

// NewScratch returns an empty Scratch ready for Context use.
func NewScratch() *Scratch { return &Scratch{} }

// ensure sizes the scratch for n groups, binding each model's Perf to
// its projection entry exactly once per shape change — ProjectionInto
// then refreshes the entry fields in place each epoch and the bound
// method value observes them through the pointer.
//
// ghlint:allocfree
func (sc *Scratch) ensure(n int) {
	if len(sc.entries) != n {
		sc.entries = make([]profiledb.Entry, n)
		sc.models = make([]solver.GroupModel, n)
		for i := range sc.models {
			sc.models[i].Perf = sc.entries[i].Predict
		}
	}
}

// Policy decides a PAR vector for one epoch.
type Policy interface {
	// Name is the Table III policy name.
	Name() string
	// UpdatesDB reports whether runtime feedback should refresh the
	// database when this policy runs.
	UpdatesDB() bool
	// Allocate returns the PAR vector (one fraction per group, sum ≤ 1).
	//
	// ghlint:units result0=frac
	Allocate(ctx Context) ([]float64, error)
}

var (
	// ErrNotProfiled is returned when the database lacks an entry for a
	// (server, workload) pair — the caller must run a training run
	// first (Algorithm 1 lines 3–5).
	ErrNotProfiled = errors.New("policy: pair not profiled; training run required")
	// ErrNoTryAllocation is returned when Manual runs without a live
	// trial callback.
	ErrNoTryAllocation = errors.New("policy: manual policy needs a TryAllocation callback")
	// ErrBadContext is returned for contexts missing required fields.
	ErrBadContext = errors.New("policy: bad context")
)

// Uniform is the heterogeneity-oblivious baseline.
type Uniform struct{}

var _ Policy = Uniform{}

// Name implements Policy.
func (Uniform) Name() string { return "Uniform" }

// UpdatesDB implements Policy.
func (Uniform) UpdatesDB() bool { return false }

// Allocate splits the supply evenly per server.
func (Uniform) Allocate(ctx Context) ([]float64, error) {
	counts := make([]int, len(ctx.Groups))
	for i, g := range ctx.Groups {
		counts[i] = g.Count
	}
	return solver.UniformFractions(counts)
}

// Manual statically tries all allocations at 10 % granularity. "Static"
// is the operative word: the trial sweep builds a fixed lookup table —
// one winning ratio per coarse supply level — and replays it for the rest
// of the run. The 10 % grid and the coarse supply bucketing are why the
// paper calls Manual's PAR accuracy "very low" under time-varying supply
// (§V-B.2), even though its trials run on the live system.
type Manual struct {
	table map[int][]float64
}

// manualBucketW is the supply quantization of Manual's lookup table.
const manualBucketW = 100.0

var _ Policy = (*Manual)(nil)

// Name implements Policy.
func (*Manual) Name() string { return "Manual" }

// UpdatesDB implements Policy.
func (*Manual) UpdatesDB() bool { return false }

// Allocate enumerates the 10 % simplex grid via live trials the first
// time each supply level is seen, then replays the table entry.
func (m *Manual) Allocate(ctx Context) ([]float64, error) {
	if len(ctx.Groups) == 0 {
		return nil, fmt.Errorf("%w: no groups", ErrBadContext)
	}
	bucket := int(ctx.SupplyW/manualBucketW + 0.5)
	if cached, ok := m.table[bucket]; ok {
		if len(cached) != len(ctx.Groups) {
			return nil, fmt.Errorf("%w: cached ratio for %d groups, rack has %d", ErrBadContext, len(cached), len(ctx.Groups))
		}
		return append([]float64(nil), cached...), nil
	}
	if ctx.TryAllocation == nil {
		return nil, ErrNoTryAllocation
	}
	const step = 0.10
	var best []float64
	bestPerf := -1.0
	try := func(fracs []float64) error {
		perf, err := ctx.TryAllocation(fracs)
		if err != nil {
			return err
		}
		if perf > bestPerf {
			bestPerf = perf
			best = append(best[:0:0], fracs...)
		}
		return nil
	}
	switch len(ctx.Groups) {
	case 1:
		if err := try([]float64{1}); err != nil {
			return nil, err
		}
	case 2:
		for i := 0; i <= 10; i++ {
			f := float64(i) * step
			if err := try([]float64{f, 1 - f}); err != nil {
				return nil, err
			}
		}
	case 3:
		for i := 0; i <= 10; i++ {
			for j := 0; i+j <= 10; j++ {
				f0, f1 := float64(i)*step, float64(j)*step
				if err := try([]float64{f0, f1, 1 - f0 - f1}); err != nil {
					return nil, err
				}
			}
		}
	default:
		return nil, fmt.Errorf("%w: %d groups", ErrBadContext, len(ctx.Groups))
	}
	if m.table == nil {
		m.table = make(map[int][]float64)
	}
	m.table[bucket] = append([]float64(nil), best...)
	return best, nil
}

// Prioritized is GreenHetero-p: allocate by descending energy efficiency.
type Prioritized struct{}

var _ Policy = Prioritized{}

// Name implements Policy.
func (Prioritized) Name() string { return "GreenHetero-p" }

// UpdatesDB implements Policy.
func (Prioritized) UpdatesDB() bool { return false }

// Allocate gives each group, in descending projected throughput-per-watt
// order, its full demand until the supply runs out.
func (Prioritized) Allocate(ctx Context) ([]float64, error) {
	entries, err := dbEntries(ctx)
	if err != nil {
		return nil, err
	}
	type ranked struct {
		idx int
		eff float64
	}
	order := make([]ranked, len(ctx.Groups))
	for i := range ctx.Groups {
		order[i] = ranked{idx: i, eff: entries[i].EnergyEfficiency()}
	}
	sort.Slice(order, func(a, b int) bool { return order[a].eff > order[b].eff })

	fracs := make([]float64, len(ctx.Groups))
	remaining := ctx.SupplyW
	for _, r := range order {
		if remaining <= 0 {
			break
		}
		g := ctx.Groups[r.idx]
		demand := float64(g.Count) * entries[r.idx].PeakEffW
		grant := demand
		if grant > remaining {
			grant = remaining
		}
		fracs[r.idx] = grant / ctx.SupplyW
		remaining -= grant
	}
	return fracs, nil
}

// Solver is the GreenHetero / GreenHetero-a allocator: the database-driven
// PAR optimizer of §IV-B.3.
type Solver struct {
	// Adaptive selects between GreenHetero (true: runtime database
	// updates) and GreenHetero-a (false).
	Adaptive bool
	// Options tunes the underlying search; zero value uses defaults.
	Options solver.Options
}

var _ Policy = Solver{}

// Name implements Policy.
func (s Solver) Name() string {
	if s.Adaptive {
		return "GreenHetero"
	}
	return "GreenHetero-a"
}

// UpdatesDB implements Policy.
func (s Solver) UpdatesDB() bool { return s.Adaptive }

// Allocate runs the PAR optimizer over the database projections. With a
// Context Scratch it reuses the model slice and the warm solver (memoized
// and table-accelerated, bit-identical to the cold solve); without one it
// builds fresh models and runs the reference solver.
//
// The annotation covers the Scratch path — the per-epoch hot path. The
// scratchless branches hang off `sc == nil` guards, which the analyzer
// treats as cold lazy-init paths, matching reality: a caller without a
// Scratch has opted out of the zero-alloc contract.
//
// ghlint:allocfree
func (s Solver) Allocate(ctx Context) ([]float64, error) {
	entries, err := dbEntries(ctx)
	if err != nil {
		return nil, err
	}
	sc := ctx.Scratch
	var models []solver.GroupModel
	if sc == nil {
		models = make([]solver.GroupModel, len(ctx.Groups))
	} else {
		models = sc.models
	}
	for i, g := range ctx.Groups {
		e := &entries[i]
		models[i].Count = g.Count
		models[i].IdleW = e.IdleW
		models[i].PeakEffW = e.PeakEffW
		if sc == nil {
			models[i].Perf = e.Predict
		}
		// The projection's Perf is fully determined by these fields —
		// declare that so the warm solver may memoize.
		models[i].Coeffs = e.Curve.Coeffs
	}
	var res solver.Result
	if sc == nil {
		res, err = solver.Optimize(models, ctx.SupplyW, s.Options)
	} else {
		res, err = sc.warm.Optimize(models, ctx.SupplyW, s.Options)
	}
	if err != nil {
		return nil, fmt.Errorf("policy %s: %w", s.Name(), err)
	}
	return res.Fractions, nil
}

// workloadFor resolves group i's workload under the mixed-rack option.
//
// ghlint:allocfree
func (c Context) workloadFor(i int) (workload.Workload, error) {
	if c.GroupWorkloads == nil {
		return c.Workload, nil
	}
	if len(c.GroupWorkloads) != len(c.Groups) {
		return workload.Workload{}, fmt.Errorf("%w: %d group workloads for %d groups",
			ErrBadContext, len(c.GroupWorkloads), len(c.Groups))
	}
	return c.GroupWorkloads[i], nil
}

// dbEntries fetches the database projection for every group, or
// ErrNotProfiled. The policies read only the projection fields (bounds,
// curve, efficiency) — never the sample window — so with a Scratch the
// entries are refreshed in place with zero steady-state allocations;
// without one each call builds a fresh slice (the cold `sc == nil`
// branch).
//
// ghlint:allocfree
func dbEntries(ctx Context) ([]profiledb.Entry, error) {
	if len(ctx.Groups) == 0 {
		return nil, fmt.Errorf("%w: no groups", ErrBadContext)
	}
	if ctx.DB == nil {
		return nil, fmt.Errorf("%w: nil database", ErrBadContext)
	}
	sc := ctx.Scratch
	var out []profiledb.Entry
	if sc == nil {
		out = make([]profiledb.Entry, len(ctx.Groups))
	} else {
		sc.ensure(len(ctx.Groups))
		out = sc.entries
	}
	for i, g := range ctx.Groups {
		w, err := ctx.workloadFor(i)
		if err != nil {
			return nil, err
		}
		k := profiledb.Key{ServerID: g.Spec.ID, WorkloadID: w.ID}
		if err := ctx.DB.ProjectionInto(k, &out[i]); err != nil {
			if errors.Is(err, profiledb.ErrNotFound) {
				return nil, fmt.Errorf("%w: %s", ErrNotProfiled, k)
			}
			return nil, err
		}
	}
	return out, nil
}

// All returns the five Table III policies in presentation order.
func All() []Policy {
	return []Policy{
		Uniform{},
		&Manual{},
		Prioritized{},
		Solver{Adaptive: false},
		Solver{Adaptive: true},
	}
}

// ByName resolves a Table III policy name.
func ByName(name string) (Policy, error) {
	for _, p := range All() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("policy: unknown policy %q", name)
}
