package metrics

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestEPU(t *testing.T) {
	tests := []struct {
		name           string
		used, supplied float64
		want           float64
	}{
		{"perfect", 220, 220, 1},
		{"uniform case study", 191, 220, 191.0 / 220},
		{"all to one server", 81, 220, 81.0 / 220},
		{"zero supply", 100, 0, 0},
		{"negative used", -5, 100, 0},
		{"overshoot clamped", 101, 100, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := EPU(tt.used, tt.supplied); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("EPU(%v, %v) = %v, want %v", tt.used, tt.supplied, got, tt.want)
			}
		})
	}
}

func TestEpochEPU(t *testing.T) {
	allocs := []Allocation{
		{AllocatedW: 110, UsedW: 110},
		{AllocatedW: 110, UsedW: 81},
	}
	got := EpochEPU(allocs, 220)
	want := 191.0 / 220
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("EpochEPU = %v, want %v", got, want)
	}
	if got := EpochEPU(nil, 100); got != 0 {
		t.Errorf("empty EpochEPU = %v, want 0", got)
	}
}

func TestNormalize(t *testing.T) {
	got, err := Normalize([]float64{2, 4, 6}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Normalize[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := Normalize([]float64{1}, 0); err == nil {
		t.Error("zero base should error")
	}
}

func TestMeanGeoMean(t *testing.T) {
	m, err := Mean([]float64{1, 2, 3})
	if err != nil || m != 2 {
		t.Errorf("Mean = %v, %v", m, err)
	}
	g, err := GeoMean([]float64{1, 4})
	if err != nil || math.Abs(g-2) > 1e-12 {
		t.Errorf("GeoMean = %v, %v", g, err)
	}
	if _, err := Mean(nil); !errors.Is(err, ErrNoData) {
		t.Errorf("Mean(nil) err = %v", err)
	}
	if _, err := GeoMean(nil); !errors.Is(err, ErrNoData) {
		t.Errorf("GeoMean(nil) err = %v", err)
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Error("GeoMean with zero should error")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean != 5 || s.Min != 2 || s.Max != 9 || s.N != 8 {
		t.Errorf("Summary = %+v", s)
	}
	if math.Abs(s.Std-2) > 1e-12 {
		t.Errorf("Std = %v, want 2", s.Std)
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v, want ErrNoData", err)
	}
}

func TestSpeedupOver(t *testing.T) {
	got, err := SpeedupOver([]float64{3, 0, 5}, []float64{2, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1.5 || got[1] != 1 || !math.IsInf(got[2], 1) {
		t.Errorf("SpeedupOver = %v", got)
	}
	if _, err := SpeedupOver([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
}

// Property: EPU is always in [0, 1].
func TestQuickEPUBounds(t *testing.T) {
	f := func(used, supply int32) bool {
		e := EPU(float64(used), float64(supply))
		return e >= 0 && e <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: GeoMean of positive values lies within [min, max].
func TestQuickGeoMeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			vals[i] = float64(r) + 1
			lo = math.Min(lo, vals[i])
			hi = math.Max(hi, vals[i])
		}
		g, err := GeoMean(vals)
		if err != nil {
			return false
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
