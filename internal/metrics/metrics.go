// Package metrics implements the paper's evaluation metrics, chiefly
// Effective Power Utilization (EPU, Eq. 1):
//
//	EPU = Σ P_throughput / Σ P_supply
//
// where P_throughput is the green power actually converted into workload
// throughput and P_supply is the power supplied. Power allocated below a
// server's idle floor (the server cannot start) or beyond the workload's
// effective peak (the server cannot draw it) counts against the policy.
package metrics

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoData is returned by aggregations over empty inputs.
var ErrNoData = errors.New("metrics: no data")

// EPU computes Eq. 1 from the power converted to throughput and the
// total supplied power. Zero supply yields zero EPU (nothing to utilize).
// The result is clamped to [0, 1]: P_throughput can never meaningfully
// exceed supply, and tiny numerical overshoots should not leak out.
func EPU(throughputPowerW, supplyW float64) float64 {
	if supplyW <= 0 {
		return 0
	}
	epu := throughputPowerW / supplyW
	if epu < 0 {
		return 0
	}
	if epu > 1 {
		return 1
	}
	return epu
}

// Allocation is one server group's share of an epoch's power, with the
// power the group's servers actually consumed toward throughput.
type Allocation struct {
	// AllocatedW is the power handed to the group.
	AllocatedW float64
	// UsedW is the power the group converted into throughput
	// (0 when below idle, capped at the workload's effective peak).
	UsedW float64
}

// EpochEPU sums a set of group allocations into one EPU value against
// the supplied power.
func EpochEPU(allocs []Allocation, supplyW float64) float64 {
	var used float64
	for _, a := range allocs {
		used += a.UsedW
	}
	return EPU(used, supplyW)
}

// Normalize divides each value by base, the paper's presentation for
// Figs. 3/9/10/13/14 (results normalized to the Uniform policy).
func Normalize(values []float64, base float64) ([]float64, error) {
	if base == 0 {
		return nil, fmt.Errorf("metrics: normalize by zero base")
	}
	out := make([]float64, len(values))
	for i, v := range values {
		out[i] = v / base
	}
	return out, nil
}

// Mean returns the arithmetic mean.
func Mean(values []float64) (float64, error) {
	if len(values) == 0 {
		return 0, ErrNoData
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values)), nil
}

// GeoMean returns the geometric mean; all inputs must be positive.
// Speedup ratios are conventionally aggregated geometrically.
func GeoMean(values []float64) (float64, error) {
	if len(values) == 0 {
		return 0, ErrNoData
	}
	var logSum float64
	for _, v := range values {
		if v <= 0 {
			return 0, fmt.Errorf("metrics: geomean of non-positive value %v", v)
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(values))), nil
}

// Summary aggregates a series.
type Summary struct {
	Min, Max, Mean, Std float64
	N                   int
}

// Summarize computes min/max/mean/population-std.
func Summarize(values []float64) (Summary, error) {
	if len(values) == 0 {
		return Summary{}, ErrNoData
	}
	s := Summary{Min: values[0], Max: values[0], N: len(values)}
	var sum float64
	for _, v := range values {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		sum += v
	}
	s.Mean = sum / float64(s.N)
	var varSum float64
	for _, v := range values {
		d := v - s.Mean
		varSum += d * d
	}
	s.Std = math.Sqrt(varSum / float64(s.N))
	return s, nil
}

// SpeedupOver returns element-wise a[i]/b[i]; the per-epoch "GreenHetero
// over Uniform" series of Figs. 8(a)/11(a). Pairs where b[i] == 0 yield
// 1 when a[i] is also 0 (both idle) and +Inf otherwise.
func SpeedupOver(a, b []float64) ([]float64, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("metrics: speedup length mismatch %d vs %d", len(a), len(b))
	}
	out := make([]float64, len(a))
	for i := range a {
		switch {
		case b[i] != 0:
			out[i] = a[i] / b[i]
		case a[i] == 0:
			out[i] = 1
		default:
			out[i] = math.Inf(1)
		}
	}
	return out, nil
}

// SLOViolated reports whether a served epoch missed its supply SLO:
// delivered supply below minFrac of the epoch's true demand. Epochs
// with no demand cannot violate. The chaos stress reports count one
// violation per rack·epoch that fails this test (or that the rack did
// not serve at all).
//
// ghlint:units minFrac=frac
func SLOViolated(suppliedW, demandW, minFrac float64) bool {
	return demandW > 0 && suppliedW < minFrac*demandW
}

// Availability is the served fraction of eligible rack·epochs — the
// fleet uptime number a stress report leads with. Zero eligible epochs
// count as fully available.
//
// ghlint:units result=frac
func Availability(served, eligible int) float64 {
	if eligible <= 0 {
		return 1
	}
	return float64(served) / float64(eligible)
}
