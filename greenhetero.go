// Package greenhetero is a from-scratch reproduction of "GreenHetero:
// Adaptive Power Allocation for Heterogeneous Green Datacenters"
// (Cai, Cao, Jiang, Wang — ICDCS 2021).
//
// GreenHetero is a rack-level controller for renewable-powered
// datacenters with heterogeneous servers. Each scheduling epoch it
// predicts renewable generation and rack demand (Holt smoothing), selects
// power sources (renewable / battery / grid, Cases A/B/C), and splits the
// available power across the rack's heterogeneous server groups by
// solving for the optimal power allocation ratio (PAR) over an
// online-profiled performance-power database.
//
// This package is the public facade: it re-exports the library's main
// types via aliases and provides convenience constructors. The
// implementation lives in the internal packages (one per subsystem — see
// DESIGN.md for the full inventory):
//
//   - internal/core       — the controller (Monitor/Scheduler/Enforcer)
//   - internal/sim        — the simulated testbed the evaluation runs on
//   - internal/policy     — the five Table III allocation policies
//   - internal/solver     — the PAR optimizer
//   - internal/profiledb  — the performance-power database
//   - internal/server     — Table II server models, DVFS ladders
//   - internal/workload   — Table I workloads and response surfaces
//   - internal/solar, internal/battery, internal/power — the green
//     power substrate
//   - internal/telemetry  — distributed TCP sensor agents
//   - internal/experiments — one runner per paper table/figure
//
// # Quick start
//
//	rack, _ := greenhetero.NewComb1Rack()
//	tr, _ := greenhetero.SolarHigh(2200)
//	res, _ := greenhetero.RunSimulation(greenhetero.SimConfig{
//		Rack:        rack,
//		Workload:    greenhetero.MustWorkload(greenhetero.SPECjbb),
//		Policy:      greenhetero.GreenHetero(),
//		Solar:       tr,
//		Epochs:      96,
//		GridBudgetW: 1000,
//	})
//	fmt.Println(res.MeanPerf(), res.MeanEPU())
package greenhetero

// Run the repo's invariant checker (see README "Static invariants")
// before pushing: `go generate .` is equivalent to
// `go run ./cmd/ghlint ./...`.
//go:generate go run ./cmd/ghlint ./...

import (
	"greenhetero/internal/battery"
	"greenhetero/internal/core"
	"greenhetero/internal/experiments"
	"greenhetero/internal/policy"
	"greenhetero/internal/scenario"
	"greenhetero/internal/server"
	"greenhetero/internal/sim"
	"greenhetero/internal/solar"
	"greenhetero/internal/trace"
	"greenhetero/internal/workload"
)

// Re-exported core types. Aliases keep the facade zero-cost: values move
// freely between the facade and the internal packages.
type (
	// Rack is a PDU-level collection of up to three heterogeneous
	// server groups.
	Rack = server.Rack
	// ServerSpec describes one server configuration (a Table II row).
	ServerSpec = server.Spec
	// ServerGroup is a homogeneous set of servers within a rack.
	ServerGroup = server.Group
	// Workload describes one Table I workload.
	Workload = workload.Workload
	// Policy decides a PAR vector each epoch (Table III).
	Policy = policy.Policy
	// SimConfig configures a simulation run.
	SimConfig = sim.Config
	// SimResult is a full simulation record.
	SimResult = sim.Result
	// EpochResult is one epoch's outcome.
	EpochResult = sim.EpochResult
	// Controller is the rack-level GreenHetero controller.
	Controller = core.Controller
	// ControllerConfig assembles a Controller.
	ControllerConfig = core.Config
	// BatteryConfig parameterizes a rack battery bank.
	BatteryConfig = battery.Config
	// Trace is a uniformly-sampled power series.
	Trace = trace.Trace
	// ExperimentTable is a reproduced paper artifact.
	ExperimentTable = experiments.Table
	// ExperimentOptions tunes an experiment runner.
	ExperimentOptions = experiments.Options
)

// Workload catalog ids (Table I).
const (
	SPECjbb       = workload.SPECjbb
	WebSearch     = workload.WebSearch
	Memcached     = workload.Memcached
	Streamcluster = workload.Streamcluster
	Canneal       = workload.Canneal
	Mcf           = workload.Mcf
	SradV1        = workload.SradV1
	Cfd           = workload.Cfd
)

// Server catalog ids (Table II).
const (
	XeonE52620  = server.XeonE52620
	XeonE52650  = server.XeonE52650
	XeonE52603  = server.XeonE52603
	CoreI78700K = server.CoreI78700K
	CoreI54460  = server.CoreI54460
	TitanXp     = server.TitanXp
)

// Servers returns the Table II server catalog.
func Servers() []ServerSpec { return server.Catalog() }

// LookupServer finds a catalog server by id.
func LookupServer(id string) (ServerSpec, error) { return server.Lookup(id) }

// Workloads returns the Table I workload catalog.
func Workloads() []Workload { return workload.Catalog() }

// LookupWorkload finds a catalog workload by id.
func LookupWorkload(id string) (Workload, error) { return workload.Lookup(id) }

// MustWorkload looks up a catalog workload and panics on unknown ids;
// intended for the compile-time constants above.
func MustWorkload(id string) Workload {
	w, err := workload.Lookup(id)
	if err != nil {
		panic(err)
	}
	return w
}

// NewRack builds a rack from heterogeneous server groups (≤3 types).
func NewRack(name string, groups ...ServerGroup) (*Rack, error) {
	return server.NewRack(name, groups...)
}

// NewComb1Rack builds the paper's default evaluation rack: five Xeon
// E5-2620 plus five Core i5-4460 servers (§V-B.1).
func NewComb1Rack() (*Rack, error) {
	a, err := server.Lookup(server.XeonE52620)
	if err != nil {
		return nil, err
	}
	b, err := server.Lookup(server.CoreI54460)
	if err != nil {
		return nil, err
	}
	return server.NewRack("comb1",
		server.Group{Spec: a, Count: 5},
		server.Group{Spec: b, Count: 5})
}

// Policies returns fresh instances of the five Table III policies.
func Policies() []Policy { return policy.All() }

// PolicyByName resolves a Table III policy name ("Uniform", "Manual",
// "GreenHetero-p", "GreenHetero-a", "GreenHetero").
func PolicyByName(name string) (Policy, error) { return policy.ByName(name) }

// GreenHetero returns the full adaptive policy.
func GreenHetero() Policy { return policy.Solver{Adaptive: true} }

// UniformPolicy returns the heterogeneity-oblivious baseline.
func UniformPolicy() Policy { return policy.Uniform{} }

// SolarHigh generates the one-week High solar trace (clear days) for a
// PV array with the given peak output.
func SolarHigh(peakWatts float64) (*Trace, error) { return solar.DefaultHigh(peakWatts) }

// SolarLow generates the one-week Low solar trace (weak, fluctuating).
func SolarLow(peakWatts float64) (*Trace, error) { return solar.DefaultLow(peakWatts) }

// DefaultBattery returns the paper's bank: 12 kWh lead-acid, 40 % DoD,
// 80 % round-trip efficiency.
func DefaultBattery() BatteryConfig { return battery.DefaultConfig() }

// RunSimulation executes one policy against the simulated green-power
// testbed.
func RunSimulation(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// ComparePolicies runs the same scenario under several policies with
// identical traces and noise, keyed by policy name. Runs execute
// concurrently (one worker per CPU) with bit-identical results; use
// ComparePoliciesParallel to pin the worker count.
func ComparePolicies(cfg SimConfig, policies []Policy) (map[string]*SimResult, error) {
	return sim.Compare(cfg, policies)
}

// ComparePoliciesParallel is ComparePolicies with an explicit
// parallelism knob: 0 means one worker per CPU, 1 forces the serial
// legacy loop. Output is bit-identical at every level.
func ComparePoliciesParallel(cfg SimConfig, policies []Policy, parallelism int) (map[string]*SimResult, error) {
	return sim.CompareParallel(cfg, policies, parallelism)
}

// NewController assembles a rack-level GreenHetero controller for live
// (non-simulated) deployments; see examples/livetelemetry.
func NewController(cfg ControllerConfig) (*Controller, error) { return core.New(cfg) }

// Experiments lists the reproducible paper artifacts (tab1–tab4, fig3,
// fig6, fig8–fig14, abl-*).
func Experiments() []string { return experiments.IDs() }

// RunExperiment regenerates one paper table or figure.
func RunExperiment(id string, opts ExperimentOptions) (*ExperimentTable, error) {
	return experiments.Run(id, opts)
}

// LoadScenario reads a declarative JSON scenario file and resolves it
// into a runnable simulation config (see internal/scenario for the
// schema).
func LoadScenario(path string) (SimConfig, error) {
	sc, err := scenario.LoadFile(path)
	if err != nil {
		return SimConfig{}, err
	}
	return sc.Build()
}
