module greenhetero

go 1.22
