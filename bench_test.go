// Package greenhetero's benchmark harness: one testing.B benchmark per
// paper table and figure (plus the DESIGN.md ablations), each driving the
// corresponding experiment runner end-to-end. Run with
//
//	go test -bench=. -benchmem
//
// Benchmarks execute the experiments in Quick mode (reduced epoch counts)
// so -bench sweeps stay fast; `go run ./cmd/ghbench <id>` produces the
// full-size artifact.
package greenhetero

import (
	"fmt"
	"io"
	"testing"
	"time"

	"greenhetero/internal/experiments"
	"greenhetero/internal/policy"
	"greenhetero/internal/server"
	"greenhetero/internal/sim"
	"greenhetero/internal/solar"
	"greenhetero/internal/workload"
)

// benchExperiment drives one experiment runner under the benchmark loop.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Run(id, experiments.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tbl.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Tables I–IV ----

func BenchmarkTable1Catalog(b *testing.B)  { benchExperiment(b, "tab1") }
func BenchmarkTable2Catalog(b *testing.B)  { benchExperiment(b, "tab2") }
func BenchmarkTable3Policies(b *testing.B) { benchExperiment(b, "tab3") }
func BenchmarkTable4Combos(b *testing.B)   { benchExperiment(b, "tab4") }

// ---- Figures ----

// BenchmarkFig3ParSweep regenerates the §III case study (EPU and
// normalized performance across the PAR sweep at a fixed 220 W budget).
func BenchmarkFig3ParSweep(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig6SourceSelection classifies a 24-hour day into the
// Case A/B/C source-selection regimes of Fig. 6.
func BenchmarkFig6SourceSelection(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig8HighTrace replays the 24-hour SPECjbb run on the High
// solar trace (performance/PAR series plus battery and grid activity).
func BenchmarkFig8HighTrace(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9WorkloadPerf regenerates the 12-workload × 5-policy
// normalized performance comparison.
func BenchmarkFig9WorkloadPerf(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10WorkloadEPU regenerates the EPU counterpart of Fig. 9.
func BenchmarkFig10WorkloadEPU(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11LowTrace replays the 24-hour run on the fluctuating Low
// solar trace.
func BenchmarkFig11LowTrace(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12GridBudget sweeps the grid power budget with drained
// batteries.
func BenchmarkFig12GridBudget(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFig13Combos compares SPECjbb across the Comb1–Comb5 racks.
func BenchmarkFig13Combos(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkFig14GPU compares the Rodinia workloads on the CPU+GPU rack.
func BenchmarkFig14GPU(b *testing.B) { benchExperiment(b, "fig14") }

// ---- Ablations (DESIGN.md §5) ----

// BenchmarkExtensionCluster runs the 3-rack datacenter extension.
func BenchmarkExtensionCluster(b *testing.B) { benchExperiment(b, "ext-cluster") }

// BenchmarkExtensionMixed runs the mixed-rack (collocated services)
// extension.
func BenchmarkExtensionMixed(b *testing.B) { benchExperiment(b, "ext-mixed") }

func BenchmarkAblationDBUpdate(b *testing.B)   { benchExperiment(b, "abl-dbupdate") }
func BenchmarkAblationSolverGrid(b *testing.B) { benchExperiment(b, "abl-solver") }
func BenchmarkAblationPredictor(b *testing.B)  { benchExperiment(b, "abl-predictor") }
func BenchmarkAblationNoise(b *testing.B)      { benchExperiment(b, "abl-noise") }

// ---- Epoch hot path (ghperf counterpart) ----

// benchEpochs times one controller epoch per iteration on the adaptive
// GreenHetero policy and reports throughput as an epochs/sec metric —
// the same figure of merit `cmd/ghperf` writes into BENCH_PR6.json, so
// `go test -bench=Epoch` and the committed trajectory stay comparable.
func benchEpochs(b *testing.B, combo ...string) {
	b.Helper()
	groups := make([]server.Group, 0, len(combo))
	for _, id := range combo {
		spec, err := server.Lookup(id)
		if err != nil {
			b.Fatal(err)
		}
		groups = append(groups, server.Group{Spec: spec, Count: 5})
	}
	rack, err := server.NewRack("bench-epoch", groups...)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := solar.Generate(solar.Config{
		Profile:   solar.High,
		PeakWatts: 2200,
		Days:      4,
		Step:      15 * time.Minute,
		Seed:      1,
	})
	if err != nil {
		b.Fatal(err)
	}
	w, err := workload.Lookup(workload.SPECjbb)
	if err != nil {
		b.Fatal(err)
	}
	newSession := func() *sim.Session {
		sess, err := sim.NewSession(sim.Config{
			Rack:        rack,
			Workload:    w,
			Policy:      policy.Solver{Adaptive: true},
			Solar:       tr,
			Epochs:      tr.Len(),
			GridBudgetW: 1000,
			Seed:        7,
		})
		if err != nil {
			b.Fatal(err)
		}
		return sess
	}

	sess := newSession()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sess.Done() {
			b.StopTimer()
			sess = newSession()
			b.StartTimer()
		}
		if _, err := sess.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "epochs/sec")
}

// BenchmarkEpochComb1 steps the two-group Comb1 rack (the ghperf
// quick-4d-comb1 scenario).
func BenchmarkEpochComb1(b *testing.B) {
	benchEpochs(b, server.XeonE52620, server.CoreI54460)
}

// BenchmarkEpochComb5 steps the three-group Comb5 rack, the heaviest
// solver case (full 3-simplex grid).
func BenchmarkEpochComb5(b *testing.B) {
	benchEpochs(b, server.XeonE52620, server.XeonE52603, server.CoreI54460)
}

// BenchmarkFullEvaluation runs every registered experiment once per
// iteration — the paper's complete evaluation end to end.
func BenchmarkFullEvaluation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, id := range experiments.IDs() {
			tbl, err := experiments.Run(id, experiments.Options{Quick: true})
			if err != nil {
				b.Fatal(fmt.Errorf("%s: %w", id, err))
			}
			if _, err := tbl.WriteTo(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}
