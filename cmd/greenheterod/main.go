// Command greenheterod runs a rack controller as a long-lived service
// with an HTTP introspection API — one scheduling epoch per wall-clock
// tick (simulated time accelerated).
//
// Usage:
//
//	greenheterod [-listen 127.0.0.1:7946] [-tick 1s] [-history 1024]
//	             [-combo Comb1] [-workload specjbb] [-policy GreenHetero]
//	             [-trace high|low] [-grid 1000] [-panel 2200] [-seed 7]
//	             [-state-dir /var/lib/greenheterod] [-snapshot-every 32]
//
// Then:
//
//	curl localhost:7946/status
//	curl localhost:7946/history
//	curl localhost:7946/db
//
// With -state-dir set, the controller's state is crash-safe: every epoch
// is journaled to a write-ahead log before it takes effect, an atomic
// snapshot compacts the log every -snapshot-every epochs, and a restart
// over the same directory (after SIGTERM or a crash) resumes the session
// exactly where it stopped. On SIGINT/SIGTERM the daemon writes a final
// checkpoint before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"greenhetero/internal/daemon"
	"greenhetero/internal/policy"
	"greenhetero/internal/scenario"
	"greenhetero/internal/server"
	"greenhetero/internal/sim"
	"greenhetero/internal/solar"
	"greenhetero/internal/workload"
)

func main() {
	if err := run(signalContext(), os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "greenheterod:", err)
		os.Exit(1)
	}
}

// signalContext cancels on SIGINT/SIGTERM.
func signalContext() context.Context {
	ctx, _ := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	return ctx
}

// comboServers mirrors Table IV.
var comboServers = map[string][]string{
	"Comb1": {server.XeonE52620, server.CoreI54460},
	"Comb2": {server.XeonE52603, server.CoreI54460},
	"Comb3": {server.XeonE52650, server.XeonE52620},
	"Comb4": {server.CoreI78700K, server.CoreI54460},
	"Comb5": {server.XeonE52620, server.XeonE52603, server.CoreI54460},
	"Comb6": {server.XeonE52620, server.TitanXp},
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("greenheterod", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7946", "HTTP listen address")
	tick := fs.Duration("tick", time.Second, "wall-clock time per scheduling epoch")
	history := fs.Int("history", 1024, "epochs retained for /history")
	comboFlag := fs.String("combo", "Comb1", "server combination (Comb1..Comb6)")
	workloadFlag := fs.String("workload", workload.SPECjbb, "workload id")
	policyFlag := fs.String("policy", "GreenHetero", "allocation policy (Table III name)")
	traceFlag := fs.String("trace", "high", "solar trace: high or low")
	grid := fs.Float64("grid", 1000, "grid power budget (W)")
	panel := fs.Float64("panel", 2200, "PV array peak output (W)")
	seed := fs.Int64("seed", 7, "measurement noise seed")
	scenarioPath := fs.String("scenario", "", "load the rack from a JSON scenario file (overrides combo/workload/trace flags)")
	stateDir := fs.String("state-dir", "", "directory for the write-ahead log and snapshots; enables crash-safe resume across restarts")
	snapshotEvery := fs.Int("snapshot-every", 32, "epochs between WAL-compacting snapshots (with -state-dir)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var session *sim.Session
	if *scenarioPath != "" {
		sc, err := scenario.LoadFile(*scenarioPath)
		if err != nil {
			return err
		}
		cfg, err := sc.Build()
		if err != nil {
			return err
		}
		session, err = sim.NewSession(cfg)
		if err != nil {
			return err
		}
	} else {
		var err error
		session, err = buildSession(*comboFlag, *workloadFlag, *policyFlag, *traceFlag, *grid, *panel, *seed)
		if err != nil {
			return err
		}
	}
	d, err := daemon.New(daemon.Config{
		Session:       session,
		Tick:          *tick,
		HistoryLimit:  *history,
		StateDir:      *stateDir,
		SnapshotEvery: *snapshotEvery,
	})
	if err != nil {
		return err
	}
	// Stop is safe in any state, so the deferred cleanup can be
	// registered before Start: an error path below still tears down —
	// and, with -state-dir, flushes a final checkpoint.
	defer d.Stop()
	if *stateDir != "" {
		if d.Recovered() {
			fmt.Printf("greenheterod: recovered state from %s, resuming at epoch %d\n",
				*stateDir, session.Epoch())
		} else {
			fmt.Printf("greenheterod: journaling state to %s (snapshot every %d epochs)\n",
				*stateDir, *snapshotEvery)
		}
	}
	if err := d.Start(); err != nil {
		return err
	}

	srv := &http.Server{Addr: *listen, Handler: d.Handler()}
	errCh := make(chan error, 1)
	go func() {
		errCh <- srv.ListenAndServe()
	}()
	fmt.Printf("greenheterod: serving on http://%s (tick %v, combo %s, workload %s, policy %s)\n",
		*listen, *tick, *comboFlag, *workloadFlag, *policyFlag)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		// The deferred Stop below writes the final checkpoint; saying so
		// here makes a clean SIGTERM distinguishable from a crash in logs.
		d.Stop()
		if *stateDir != "" {
			fmt.Printf("greenheterod: final checkpoint written to %s\n", *stateDir)
		}
		return nil
	}
}

// buildSession assembles the stepwise simulation from the flags.
func buildSession(combo, workloadID, policyName, traceName string, grid, panel float64, seed int64) (*sim.Session, error) {
	serverIDs, ok := comboServers[combo]
	if !ok {
		return nil, fmt.Errorf("unknown combo %q (have Comb1..Comb6)", combo)
	}
	groups := make([]server.Group, 0, len(serverIDs))
	for _, id := range serverIDs {
		spec, err := server.Lookup(id)
		if err != nil {
			return nil, err
		}
		groups = append(groups, server.Group{Spec: spec, Count: 5})
	}
	rack, err := server.NewRack(strings.ToLower(combo), groups...)
	if err != nil {
		return nil, err
	}
	w, err := workload.Lookup(workloadID)
	if err != nil {
		return nil, err
	}
	p, err := policy.ByName(policyName)
	if err != nil {
		return nil, err
	}
	profile, err := solar.ParseProfile(traceName)
	if err != nil {
		return nil, err
	}
	generate := solar.DefaultHigh
	if profile == solar.Low {
		generate = solar.DefaultLow
	}
	tr, err := generate(panel)
	if err != nil {
		return nil, err
	}
	return sim.NewSession(sim.Config{
		Rack:        rack,
		Workload:    w,
		Policy:      p,
		Solar:       tr,
		Epochs:      tr.Len(), // a full week, then the trace end holds
		GridBudgetW: grid,
		Seed:        seed,
	})
}
