package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	return addr
}

func TestBuildSessionErrors(t *testing.T) {
	tests := []struct {
		name                    string
		combo, wl, pol, traceID string
	}{
		{"bad combo", "Comb9", "specjbb", "GreenHetero", "high"},
		{"bad workload", "Comb1", "doom", "GreenHetero", "high"},
		{"bad policy", "Comb1", "specjbb", "Oracle", "high"},
		{"bad trace", "Comb1", "specjbb", "GreenHetero", "wind"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := buildSession(tt.combo, tt.wl, tt.pol, tt.traceID, 1000, 2200, 7); err == nil {
				t.Error("want error")
			}
		})
	}
	if _, err := buildSession("Comb1", "specjbb", "GreenHetero", "high", 1000, 2200, 7); err != nil {
		t.Fatalf("valid session: %v", err)
	}
}

func TestDaemonServesAndShutsDown(t *testing.T) {
	addr := freePort(t)
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, []string{"-listen", addr, "-tick", "5ms"})
	}()

	// Wait for the API to come up and serve a status with progress.
	url := fmt.Sprintf("http://%s/status", addr)
	deadline := time.Now().Add(10 * time.Second)
	var sawEpoch bool
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err != nil {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		var st struct {
			Epochs int `json:"epochs"`
		}
		decodeErr := json.NewDecoder(resp.Body).Decode(&st)
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		if decodeErr == nil && st.Epochs > 0 {
			sawEpoch = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !sawEpoch {
		t.Error("daemon never reported a completed epoch")
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-nope"}); err == nil {
		t.Error("bad flag should error")
	}
	if err := run(context.Background(), []string{"-combo", "Comb9"}); err == nil {
		t.Error("bad combo should error")
	}
}

func TestRunScenarioFile(t *testing.T) {
	doc := `{
  "name": "daemon-scenario",
  "groups": [{"server": "e5-2620", "count": 5, "workload": "specjbb"}],
  "policy": "Uniform",
  "solar": {"profile": "high", "peakWatts": 1500, "days": 1, "seed": 1},
  "epochs": 96,
  "gridBudgetW": 500
}`
	dir := t.TempDir()
	path := filepath.Join(dir, "scenario.json")
	if err := os.WriteFile(path, []byte(doc), 0o600); err != nil {
		t.Fatal(err)
	}
	addr := freePort(t)
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, []string{"-listen", addr, "-tick", "5ms", "-scenario", path})
	}()
	// Wait for a healthy response then shut down.
	deadline := time.Now().Add(10 * time.Second)
	healthy := false
	for time.Now().Before(deadline) {
		resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
		if err == nil {
			if err := resp.Body.Close(); err != nil {
				t.Fatal(err)
			}
			healthy = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !healthy {
		t.Error("daemon never became healthy")
	}
	cancel()
	if err := <-errCh; err != nil {
		t.Fatalf("run: %v", err)
	}
	// Bad scenario path errors immediately.
	if err := run(context.Background(), []string{"-scenario", "/nonexistent.json"}); err == nil {
		t.Error("missing scenario should error")
	}
}

// TestRunResumesFromStateDir runs the daemon twice over one -state-dir:
// the second life must report recovered=true and resume past the first
// life's progress.
func TestRunResumesFromStateDir(t *testing.T) {
	dir := t.TempDir()

	// statusAt polls until /status decodes and cond holds.
	statusAt := func(addr string, cond func(epochs int, recovered bool) bool) bool {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := http.Get(fmt.Sprintf("http://%s/status", addr))
			if err != nil {
				time.Sleep(10 * time.Millisecond)
				continue
			}
			var st struct {
				SessionEpoch int  `json:"sessionEpoch"`
				Recovered    bool `json:"recovered"`
			}
			decodeErr := json.NewDecoder(resp.Body).Decode(&st)
			if err := resp.Body.Close(); err != nil {
				t.Fatal(err)
			}
			if decodeErr == nil && cond(st.SessionEpoch, st.Recovered) {
				return true
			}
			time.Sleep(10 * time.Millisecond)
		}
		return false
	}

	life := func(wantRecovered bool, minEpoch int) {
		addr := freePort(t)
		ctx, cancel := context.WithCancel(context.Background())
		errCh := make(chan error, 1)
		go func() {
			errCh <- run(ctx, []string{
				"-listen", addr, "-tick", "5ms",
				"-state-dir", dir, "-snapshot-every", "2",
			})
		}()
		ok := statusAt(addr, func(epochs int, recovered bool) bool {
			return recovered == wantRecovered && epochs > minEpoch
		})
		cancel()
		if err := <-errCh; err != nil {
			t.Fatalf("run: %v", err)
		}
		if !ok {
			t.Fatalf("daemon never reached recovered=%v past epoch %d", wantRecovered, minEpoch)
		}
	}

	life(false, 2) // first life: fresh dir, make progress, SIGTERM-equivalent exit
	life(true, 2)  // second life: resumes from the final checkpoint
}
