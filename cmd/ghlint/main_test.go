package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chdirRepoRoot moves the test into the module root so package patterns
// resolve the same way they do for `go run ./cmd/ghlint`. os.Chdir with
// a cleanup rather than t.Chdir, which requires go1.24 while go.mod and
// CI pin go1.22.
func chdirRepoRoot(t *testing.T) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(filepath.Join(wd, "..", "..")); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(wd); err != nil {
			t.Errorf("restoring working directory: %v", err)
		}
	})
}

func TestRunCleanPackage(t *testing.T) {
	chdirRepoRoot(t)
	var stdout, stderr bytes.Buffer
	// internal/fit is deterministic-core and clean; the full suite must
	// pass over it.
	if code := run([]string{"./internal/fit"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(./internal/fit) = %d, want 0\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean package produced output: %s", stdout.String())
	}
}

func TestRunSuppressedFinding(t *testing.T) {
	chdirRepoRoot(t)
	var stdout, stderr bytes.Buffer
	// internal/runner contains the one legitimate CPU-count read behind
	// a reasoned suppression; the suite must accept it.
	if code := run([]string{"./internal/runner"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(./internal/runner) = %d, want 0\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-list) = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	for _, name := range []string{"determinism", "seedflow", "unitsafety", "floateq"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, stdout.String())
		}
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-analyzers", "nosuch", "./internal/fit"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run(-analyzers nosuch) = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr missing diagnosis: %s", stderr.String())
	}
}

func TestSelectAnalyzersSubsetOrder(t *testing.T) {
	picked, err := selectAnalyzers("floateq,determinism,floateq")
	if err != nil {
		t.Fatal(err)
	}
	if len(picked) != 2 || picked[0].Name != "determinism" || picked[1].Name != "floateq" {
		names := make([]string, len(picked))
		for i, a := range picked {
			names[i] = a.Name
		}
		t.Fatalf("selectAnalyzers = %v, want [determinism floateq] (deduped, suite order)", names)
	}
}
