package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"greenhetero/internal/lint"
)

// chdirRepoRoot moves the test into the module root so package patterns
// resolve the same way they do for `go run ./cmd/ghlint`. os.Chdir with
// a cleanup rather than t.Chdir, which requires go1.24 while go.mod and
// CI pin go1.22.
func chdirRepoRoot(t *testing.T) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(filepath.Join(wd, "..", "..")); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(wd); err != nil {
			t.Errorf("restoring working directory: %v", err)
		}
	})
}

func TestRunCleanPackage(t *testing.T) {
	chdirRepoRoot(t)
	var stdout, stderr bytes.Buffer
	// internal/fit is deterministic-core and clean; the full suite must
	// pass over it.
	if code := run([]string{"./internal/fit"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(./internal/fit) = %d, want 0\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean package produced output: %s", stdout.String())
	}
}

func TestRunSuppressedFinding(t *testing.T) {
	chdirRepoRoot(t)
	var stdout, stderr bytes.Buffer
	// internal/runner contains the one legitimate CPU-count read behind
	// a reasoned suppression; the suite must accept it.
	if code := run([]string{"./internal/runner"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(./internal/runner) = %d, want 0\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-list) = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	for _, name := range []string{"determinism", "seedflow", "units", "floateq", "guardedby", "goleak", "deferclose", "chanbound", "allocfree", "dettaint"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, stdout.String())
		}
	}
}

// TestRunJSONStableAndSuppressed pins the -json contract on the one
// package with a live suppression (internal/runner's GOMAXPROCS read):
// the suppressed finding appears with "suppressed": true, the exit code
// stays 0, and two runs produce byte-identical output.
func TestRunJSONStableAndSuppressed(t *testing.T) {
	chdirRepoRoot(t)
	var out1, out2, stderr bytes.Buffer
	if code := run([]string{"-json", "./internal/runner"}, &out1, &stderr); code != 0 {
		t.Fatalf("run(-json ./internal/runner) = %d, want 0\nstderr: %s", code, stderr.String())
	}
	if code := run([]string{"-json", "./internal/runner"}, &out2, &stderr); code != 0 {
		t.Fatalf("second run(-json ./internal/runner) = %d, want 0\nstderr: %s", code, stderr.String())
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Errorf("-json output is not byte-stable across runs:\n--- first\n%s\n--- second\n%s", out1.String(), out2.String())
	}

	var diags []jsonDiagnostic
	if err := json.Unmarshal(out1.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out1.String())
	}
	foundSuppressed := false
	for _, d := range diags {
		if d.Suppressed && d.Analyzer == "determinism" && strings.HasPrefix(d.File, "internal/runner") {
			foundSuppressed = true
		}
		if !d.Suppressed {
			t.Errorf("unexpected live finding in -json output: %+v", d)
		}
	}
	if !foundSuppressed {
		t.Errorf("-json output missing the suppressed runner finding:\n%s", out1.String())
	}
	if !sort.SliceIsSorted(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	}) {
		t.Errorf("-json output is not sorted by file/line/col:\n%s", out1.String())
	}
}

// TestRunJSONEmptyIsArray pins that a clean package yields a valid,
// empty JSON array — not "null" — so downstream tooling can always
// iterate the result.
func TestRunJSONEmptyIsArray(t *testing.T) {
	chdirRepoRoot(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./internal/fit"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-json ./internal/fit) = %d, want 0\nstderr: %s", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean package -json output = %q, want \"[]\"", got)
	}
}

// TestRunSARIFStableAndSuppressed pins the -sarif contract on the same
// package -json is pinned on: valid SARIF 2.1.0 shape, a rule per
// analyzer plus the "ghlint" pseudo-rule, an inSource suppression
// object on the runner's silenced determinism finding, exit 0, and
// byte-identical output across two runs.
func TestRunSARIFStableAndSuppressed(t *testing.T) {
	chdirRepoRoot(t)
	var out1, out2, stderr bytes.Buffer
	if code := run([]string{"-sarif", "./internal/runner"}, &out1, &stderr); code != 0 {
		t.Fatalf("run(-sarif ./internal/runner) = %d, want 0\nstderr: %s", code, stderr.String())
	}
	if code := run([]string{"-sarif", "./internal/runner"}, &out2, &stderr); code != 0 {
		t.Fatalf("second run(-sarif ./internal/runner) = %d, want 0\nstderr: %s", code, stderr.String())
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Errorf("-sarif output is not byte-stable across runs:\n--- first\n%s\n--- second\n%s", out1.String(), out2.String())
	}

	var log sarifLog
	if err := json.Unmarshal(out1.Bytes(), &log); err != nil {
		t.Fatalf("-sarif output is not valid JSON: %v\n%s", err, out1.String())
	}
	if log.Version != "2.1.0" {
		t.Errorf("sarif version = %q, want 2.1.0", log.Version)
	}
	if !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("sarif $schema = %q, want a 2.1.0 schema URI", log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("sarif log has %d runs, want 1", len(log.Runs))
	}
	sr := log.Runs[0]
	if sr.Tool.Driver.Name != "ghlint" {
		t.Errorf("sarif driver name = %q, want ghlint", sr.Tool.Driver.Name)
	}
	ruleIDs := make(map[string]bool, len(sr.Tool.Driver.Rules))
	for _, r := range sr.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, name := range append(lint.AnalyzerNames(), "ghlint") {
		if !ruleIDs[name] {
			t.Errorf("sarif rules missing %q (have %v)", name, ruleIDs)
		}
	}
	foundSuppressed := false
	for _, r := range sr.Results {
		if r.RuleID == "" || len(r.Locations) == 0 {
			t.Errorf("sarif result missing ruleId or location: %+v", r)
			continue
		}
		loc := r.Locations[0].PhysicalLocation
		if len(r.Suppressions) > 0 && r.RuleID == "determinism" &&
			strings.HasPrefix(loc.ArtifactLocation.URI, "internal/runner") &&
			r.Suppressions[0].Kind == "inSource" {
			foundSuppressed = true
		}
		if len(r.Suppressions) == 0 {
			t.Errorf("unexpected live finding in -sarif output: %+v", r)
		}
	}
	if !foundSuppressed {
		t.Errorf("-sarif output missing the inSource-suppressed runner finding:\n%s", out1.String())
	}
}

// TestRunSARIFCleanPackage pins the empty-tree shape: a clean package
// still yields one run with the full rule table and an empty (non-null)
// results array, so code scanning can always ingest the artifact.
func TestRunSARIFCleanPackage(t *testing.T) {
	chdirRepoRoot(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-sarif", "./internal/fit"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-sarif ./internal/fit) = %d, want 0\nstderr: %s", code, stderr.String())
	}
	var log sarifLog
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("-sarif output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if len(log.Runs) != 1 {
		t.Fatalf("sarif log has %d runs, want 1", len(log.Runs))
	}
	if log.Runs[0].Results == nil {
		t.Errorf("clean package -sarif results is null, want an empty array:\n%s", stdout.String())
	}
	if n := len(log.Runs[0].Results); n != 0 {
		t.Errorf("clean package -sarif has %d results, want 0", n)
	}
}

// TestRunJSONSarifExclusive pins that the two machine formats cannot be
// combined: asking for both is a usage error, not a silent preference.
func TestRunJSONSarifExclusive(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "-sarif", "./internal/fit"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run(-json -sarif) = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "mutually exclusive") {
		t.Errorf("stderr missing diagnosis: %s", stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("usage error produced stdout output: %s", stdout.String())
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-analyzers", "nosuch", "./internal/fit"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run(-analyzers nosuch) = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr missing diagnosis: %s", stderr.String())
	}
}

// baselineModule builds a throwaway module with two deliberate
// dimension bugs (power added to energy) and chdirs into it, so the
// -baseline tests can snapshot real findings without planting any in
// the repository itself.
func baselineModule(t *testing.T) string {
	t.Helper()
	dir, err := filepath.EvalSymlinks(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"a.go":   "package tmpmod\n\nfunc MixA(aW, bWh float64) float64 { return aW + bWh }\n",
		"b.go":   "package tmpmod\n\nfunc MixB(aW, bWh float64) float64 { return aW + bWh }\n",
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(wd); err != nil {
			t.Errorf("restoring working directory: %v", err)
		}
	})
	return dir
}

// TestRunBaselineCoversAndCatches pins the -baseline adoption loop:
// snapshot a tree's findings with -json, re-run against the snapshot
// and exit 0, then introduce new findings and exit 1 reporting ONLY
// those — in the same stable order as -json, byte-identical across
// runs — even after the tolerated findings drift to different lines.
func TestRunBaselineCoversAndCatches(t *testing.T) {
	dir := baselineModule(t)

	var snap, stderr bytes.Buffer
	if code := run([]string{"-json", "./..."}, &snap, &stderr); code != 1 {
		t.Fatalf("run(-json) over the buggy module = %d, want 1\nstderr: %s", code, stderr.String())
	}
	base := filepath.Join(dir, "findings.json")
	if err := os.WriteFile(base, snap.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout bytes.Buffer
	stderr.Reset()
	if code := run([]string{"-baseline", base, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-baseline) with all findings covered = %d, want 0\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("covered run produced output: %s", stdout.String())
	}

	// Shift a tolerated finding down its file (line drift must not
	// un-cover it) and add two new bugs in two files.
	drifted := "package tmpmod\n\n// padding\n// padding\nfunc MixA(aW, bWh float64) float64 { return aW + bWh }\n"
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(drifted), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, src := range map[string]string{
		"c.go": "package tmpmod\n\nfunc MixC(aW, bWh float64) float64 { return aW + bWh }\n",
		"d.go": "package tmpmod\n\nfunc MixD(aW, bWh float64) float64 { return aW + bWh }\n",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	var out1, out2 bytes.Buffer
	stderr.Reset()
	if code := run([]string{"-baseline", base, "./..."}, &out1, &stderr); code != 1 {
		t.Fatalf("run(-baseline) with new findings = %d, want 1\nstdout: %s\nstderr: %s",
			code, out1.String(), stderr.String())
	}
	if code := run([]string{"-baseline", base, "./..."}, &out2, &stderr); code != 1 {
		t.Fatalf("second run(-baseline) = %d, want 1", code)
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Errorf("-baseline output is not byte-stable across runs:\n--- first\n%s\n--- second\n%s",
			out1.String(), out2.String())
	}
	got := out1.String()
	for _, tolerated := range []string{"a.go", "b.go"} {
		if strings.Contains(got, tolerated) {
			t.Errorf("baselined finding in %s resurfaced:\n%s", tolerated, got)
		}
	}
	ci, di := strings.Index(got, "c.go"), strings.Index(got, "d.go")
	if ci < 0 || di < 0 {
		t.Fatalf("new findings missing from -baseline output:\n%s", got)
	}
	if ci > di {
		t.Errorf("-baseline output not in file order (c.go after d.go):\n%s", got)
	}
	if !strings.Contains(stderr.String(), "not in baseline") {
		t.Errorf("stderr missing baseline diagnosis: %s", stderr.String())
	}
}

// TestRunBaselineCountsOccurrences pins that the baseline is a
// multiset: each (file, analyzer, message) key is tolerated only up to
// its snapshotted occurrence count, so a second textually identical
// instance introduced beside a tolerated finding still fails instead
// of hiding under the first one's key.
func TestRunBaselineCountsOccurrences(t *testing.T) {
	dir := baselineModule(t)

	var snap, stderr bytes.Buffer
	if code := run([]string{"-json", "./..."}, &snap, &stderr); code != 1 {
		t.Fatalf("run(-json) over the buggy module = %d, want 1\nstderr: %s", code, stderr.String())
	}
	base := filepath.Join(dir, "findings.json")
	if err := os.WriteFile(base, snap.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	// Duplicate the tolerated mix in a.go verbatim: same file, same
	// analyzer, same message — only the occurrence count tells the new
	// instance apart from the snapshotted one.
	doubled := "package tmpmod\n\nfunc MixA(aW, bWh float64) float64 { return aW + bWh }\n\nfunc MixA2(aW, bWh float64) float64 { return aW + bWh }\n"
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(doubled), 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout bytes.Buffer
	stderr.Reset()
	if code := run([]string{"-baseline", base, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("run(-baseline) with a duplicated finding = %d, want 1\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
	got := stdout.String()
	if n := strings.Count(got, "a.go"); n != 1 {
		t.Errorf("want exactly the one over-count duplicate reported, got %d a.go line(s):\n%s", n, got)
	}
	if strings.Contains(got, "b.go") {
		t.Errorf("fully covered finding in b.go resurfaced:\n%s", got)
	}
}

// TestRunBaselineBadFile pins the failure modes around the baseline
// file itself: missing or malformed baselines are usage errors (exit
// 2), never silently treated as empty — an empty tolerated set would
// turn every adopted finding into a build break.
func TestRunBaselineBadFile(t *testing.T) {
	dir := baselineModule(t)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-baseline", filepath.Join(dir, "nosuch.json"), "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("run(-baseline nosuch.json) = %d, want 2\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "baseline") {
		t.Errorf("stderr missing diagnosis: %s", stderr.String())
	}

	garbage := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(garbage, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", garbage, "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("run(-baseline garbage.json) = %d, want 2\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "findings array") {
		t.Errorf("stderr missing diagnosis: %s", stderr.String())
	}
}

// TestRunBaselineExclusive pins that -baseline cannot be combined with
// the machine formats: the snapshot loop is json-out, text-in.
func TestRunBaselineExclusive(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "-baseline", "x.json", "./internal/fit"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run(-json -baseline) = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-baseline") {
		t.Errorf("stderr missing diagnosis: %s", stderr.String())
	}
}

func TestSelectAnalyzersSubsetOrder(t *testing.T) {
	picked, err := selectAnalyzers("floateq,determinism,floateq")
	if err != nil {
		t.Fatal(err)
	}
	if len(picked) != 2 || picked[0].Name != "determinism" || picked[1].Name != "floateq" {
		names := make([]string, len(picked))
		for i, a := range picked {
			names[i] = a.Name
		}
		t.Fatalf("selectAnalyzers = %v, want [determinism floateq] (deduped, suite order)", names)
	}
}
