// Command ghlint runs the repository's domain-aware static-analysis
// suite (internal/lint): the statement-local analyzers (determinism,
// seedflow, floateq), the flow-sensitive concurrency analyzers
// (guardedby, goleak, deferclose, chanbound), and the interprocedural
// call-graph analyzers (units, allocfree, dettaint). It is the
// mechanical guardian of the invariants the simulator's bit-identical
// serial-vs-parallel proof — the daemon's lock discipline, the epoch
// hot path's zero-alloc contract, and the W/Wh/h dimension discipline
// — depend on.
//
// Usage:
//
//	go run ./cmd/ghlint ./...             # whole repo, all analyzers
//	go run ./cmd/ghlint ./internal/sim    # one package
//	go run ./cmd/ghlint -analyzers floateq,units ./...
//	go run ./cmd/ghlint -json ./...       # machine-readable findings
//	go run ./cmd/ghlint -sarif ./...      # SARIF 2.1.0 for code scanning
//	go run ./cmd/ghlint -baseline prior.json ./...  # only NEW findings fail
//	go run ./cmd/ghlint -list             # describe the analyzers
//
// Exit status: 0 clean, 1 findings reported, 2 usage or load error.
//
// All loaded packages are analyzed as one program: the interprocedural
// analyzers resolve calls across package boundaries, so linting a
// single package sees less than linting ./... does.
//
// -json emits a sorted JSON array of every finding *including
// suppressed ones* (marked with "suppressed": true), so a CI artifact
// can expose suppression churn per PR; the exit status still counts
// only unsuppressed findings. The output is byte-stable for a given
// tree: same source in, same bytes out.
//
// -sarif emits the same findings as a SARIF 2.1.0 log, the format
// GitHub code scanning ingests to render findings as PR annotations.
// Suppressed findings carry an inSource suppression object, which code
// scanning honors. Byte-stability matches -json.
//
// -baseline takes a findings file from a prior -json run and reports
// only findings NOT in it, so a new analyzer can be adopted
// incrementally: snapshot the pre-existing debt once, then every
// branch fails only on findings it introduced. Findings are matched by
// (file, analyzer, message), up to the snapshotted occurrence count
// per key — line and column are deliberately ignored so unrelated
// edits that shift a tolerated finding down the file do not break the
// build, but a NEW identical instance beside a tolerated one still
// fails. New findings print in the same stable order as
// -json. Exit status: 0 when every unsuppressed finding is covered by
// the baseline, 1 when new findings exist, 2 when the baseline file is
// unreadable or not a -json findings array.
//
// Findings are suppressed line-by-line with a reasoned directive the
// driver verifies:
//
//	//lint:ghlint ignore <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"greenhetero/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable driver body.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ghlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		analyzerCSV = fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		list        = fs.Bool("list", false, "list the analyzers and exit")
		jsonOut     = fs.Bool("json", false, "emit findings as a sorted JSON array (suppressed findings included and marked)")
		sarifOut    = fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log for GitHub code scanning")
		basePath    = fs.String("baseline", "", "findings file from a prior -json run; only findings not in it are reported (matched by file+analyzer+message up to the snapshotted count, line drift ignored)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: ghlint [flags] [packages]\n\n"+
			"ghlint runs the GreenHetero static-analysis suite over the given\n"+
			"package patterns (default ./...).\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *jsonOut && *sarifOut {
		fmt.Fprintf(stderr, "ghlint: -json and -sarif are mutually exclusive\n")
		return 2
	}
	if *basePath != "" && (*jsonOut || *sarifOut) {
		fmt.Fprintf(stderr, "ghlint: -baseline filters the default text output; it cannot be combined with -json or -sarif\n")
		return 2
	}
	var baseline map[string]int
	if *basePath != "" {
		var err error
		if baseline, err = loadBaseline(*basePath); err != nil {
			fmt.Fprintf(stderr, "ghlint: baseline: %v\n", err)
			return 2
		}
	}
	analyzers, err := selectAnalyzers(*analyzerCSV)
	if err != nil {
		fmt.Fprintf(stderr, "ghlint: %v\n", err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	pkgs, err := lint.Load(".", fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "ghlint: %v\n", err)
		return 2
	}

	// One program over every loaded package: the interprocedural
	// analyzers (allocfree, dettaint) resolve cross-package call edges
	// through it.
	prog := lint.BuildProgram(pkgs)

	findings := 0
	jdiags := []jsonDiagnostic{}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			// Partial type information can hide findings; surface it
			// loudly but keep analyzing what did check.
			fmt.Fprintf(stderr, "ghlint: %s: type error: %v\n", pkg.Path, terr)
		}
		if *jsonOut || *sarifOut {
			for _, d := range lint.RunProgramPackageAll(prog, pkg, analyzers) {
				pos := pkg.Fset.Position(d.Pos)
				jdiags = append(jdiags, jsonDiagnostic{
					File:       relPos(pos.Filename),
					Line:       pos.Line,
					Col:        pos.Column,
					Analyzer:   d.Analyzer,
					Message:    d.Message,
					Suppressed: d.Suppressed,
				})
				if !d.Suppressed {
					findings++
				}
			}
			continue
		}
		for _, d := range lint.RunProgramPackage(prog, pkg, analyzers) {
			pos := pkg.Fset.Position(d.Pos)
			if baseline != nil {
				// Collect and defer: baseline filtering needs the
				// whole-run view to print new findings in one stable
				// order.
				jdiags = append(jdiags, jsonDiagnostic{
					File:     relPos(pos.Filename),
					Line:     pos.Line,
					Col:      pos.Column,
					Analyzer: d.Analyzer,
					Message:  d.Message,
				})
				continue
			}
			fmt.Fprintf(stdout, "%s: [%s] %s\n", relPos(pos.String()), d.Analyzer, d.Message)
			findings++
		}
	}
	if baseline != nil {
		// Sort before consuming: the baseline tolerates each key only up
		// to its snapshotted occurrence count, so which duplicate
		// survives depends on visit order — consume in the canonical
		// order to keep the output a pure function of the source.
		sortDiags(jdiags)
		var fresh []jsonDiagnostic
		for _, d := range jdiags {
			key := baselineKey(d)
			if baseline[key] > 0 {
				baseline[key]--
				continue
			}
			fresh = append(fresh, d)
		}
		for _, d := range fresh {
			fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message)
		}
		if len(fresh) > 0 {
			fmt.Fprintf(stderr, "ghlint: %d finding(s) not in baseline %s; fix them, suppress them with a reasoned directive, or refresh the baseline\n",
				len(fresh), *basePath)
			return 1
		}
		return 0
	}
	switch {
	case *jsonOut:
		if err := writeJSON(stdout, jdiags); err != nil {
			fmt.Fprintf(stderr, "ghlint: encoding findings: %v\n", err)
			return 2
		}
	case *sarifOut:
		if err := writeSARIF(stdout, analyzers, jdiags); err != nil {
			fmt.Fprintf(stderr, "ghlint: encoding SARIF: %v\n", err)
			return 2
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "ghlint: %d finding(s); fix them or add a reasoned "+
			"//lint:ghlint ignore <analyzer> <reason> directive\n", findings)
		return 1
	}
	return 0
}

// jsonDiagnostic is one finding in -json output. The field set is the
// review contract: file/line/col locate it, analyzer and message name
// it, suppressed distinguishes "silenced with a reason" from "live".
type jsonDiagnostic struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// sortDiags orders findings by file, line, column, analyzer, message —
// the one canonical order shared by -json, -sarif, and -baseline, so
// every output mode's bytes are a pure function of the analyzed source,
// independent of package enumeration order.
func sortDiags(diags []jsonDiagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// baselineKey identifies a finding for -baseline matching. Line and
// column are deliberately absent: a tolerated finding that drifts down
// the file under unrelated edits stays tolerated.
func baselineKey(d jsonDiagnostic) string {
	return d.File + "\x00" + d.Analyzer + "\x00" + d.Message
}

// loadBaseline reads a prior -json findings file into the tolerated
// multiset: per-key occurrence counts, so a second identical instance
// introduced next to a tolerated one still fails — the baseline
// vouches for exactly as many as it snapshotted. Suppressed entries
// are included: a finding that was silenced with a directive at
// snapshot time stays non-failing if the directive is later dropped
// but the baseline still vouches for it.
func loadBaseline(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var diags []jsonDiagnostic
	if err := json.Unmarshal(data, &diags); err != nil {
		return nil, fmt.Errorf("%s is not a ghlint -json findings array: %v", path, err)
	}
	tolerated := make(map[string]int, len(diags))
	for _, d := range diags {
		tolerated[baselineKey(d)]++
	}
	return tolerated, nil
}

// writeJSON emits the findings as one stably-sorted, indented JSON
// array.
func writeJSON(w io.Writer, diags []jsonDiagnostic) error {
	sortDiags(diags)
	out, err := json.MarshalIndent(diags, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", out)
	return err
}

// SARIF 2.1.0 output. The structs cover exactly the subset GitHub code
// scanning reads: one run, one driver with a rule per analyzer, one
// result per finding with a physical location, and inSource
// suppression objects for directive-silenced findings (code scanning
// hides those instead of re-annotating reviewed suppressions).

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	Level        string             `json:"level"`
	Message      sarifMessage       `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

type sarifSuppression struct {
	Kind string `json:"kind"`
}

// writeSARIF emits the findings as one SARIF 2.1.0 log. Ordering
// reuses the -json sort, so the bytes are a pure function of the
// analyzed source.
func writeSARIF(w io.Writer, analyzers []*lint.Analyzer, diags []jsonDiagnostic) error {
	sortDiags(diags)
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	// Driver-level findings (malformed directives) report under the
	// pseudo-analyzer "ghlint".
	rules = append(rules, sarifRule{ID: "ghlint", ShortDescription: sarifMessage{
		Text: "driver-level findings: malformed suppression directives",
	}})
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		r := sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysicalLocation{
				ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(d.File)},
				Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
			}}},
		}
		if d.Suppressed {
			r.Suppressions = []sarifSuppression{{Kind: "inSource"}}
		}
		results = append(results, r)
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "ghlint", InformationURI: "https://github.com/greenhetero", Rules: rules}},
			Results: results,
		}},
	}
	out, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", out)
	return err
}

// selectAnalyzers resolves the -analyzers flag against the suite.
func selectAnalyzers(csv string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	if csv == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*lint.Analyzer
	seen := make(map[string]bool)
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)",
				name, strings.Join(lint.AnalyzerNames(), ", "))
		}
		if !seen[name] {
			picked = append(picked, a)
			seen[name] = true
		}
	}
	sort.Slice(picked, func(i, j int) bool { return analyzerRank(picked[i].Name) < analyzerRank(picked[j].Name) })
	return picked, nil
}

// analyzerRank orders a subset like the full suite.
func analyzerRank(name string) int {
	for i, n := range lint.AnalyzerNames() {
		if n == name {
			return i
		}
	}
	return len(lint.AnalyzerNames())
}

// relPos trims the current directory prefix so findings print as
// clickable repo-relative paths.
func relPos(pos string) string {
	wd, err := os.Getwd()
	if err != nil {
		return pos
	}
	if rel, err := filepath.Rel(wd, pos); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return pos
}
