// Command ghlint runs the repository's domain-aware static-analysis
// suite (internal/lint): the statement-local analyzers (determinism,
// seedflow, unitsafety, floateq) and the flow-sensitive concurrency
// analyzers (guardedby, goleak, deferclose). It is the mechanical
// guardian of the invariants the simulator's bit-identical
// serial-vs-parallel proof — and the daemon's lock discipline — depend
// on.
//
// Usage:
//
//	go run ./cmd/ghlint ./...             # whole repo, all analyzers
//	go run ./cmd/ghlint ./internal/sim    # one package
//	go run ./cmd/ghlint -analyzers floateq,unitsafety ./...
//	go run ./cmd/ghlint -json ./...       # machine-readable findings
//	go run ./cmd/ghlint -list             # describe the analyzers
//
// Exit status: 0 clean, 1 findings reported, 2 usage or load error.
//
// -json emits a sorted JSON array of every finding *including
// suppressed ones* (marked with "suppressed": true), so a CI artifact
// can expose suppression churn per PR; the exit status still counts
// only unsuppressed findings. The output is byte-stable for a given
// tree: same source in, same bytes out.
//
// Findings are suppressed line-by-line with a reasoned directive the
// driver verifies:
//
//	//lint:ghlint ignore <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"greenhetero/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable driver body.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ghlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		analyzerCSV = fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		list        = fs.Bool("list", false, "list the analyzers and exit")
		jsonOut     = fs.Bool("json", false, "emit findings as a sorted JSON array (suppressed findings included and marked)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: ghlint [flags] [packages]\n\n"+
			"ghlint runs the GreenHetero static-analysis suite over the given\n"+
			"package patterns (default ./...).\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers, err := selectAnalyzers(*analyzerCSV)
	if err != nil {
		fmt.Fprintf(stderr, "ghlint: %v\n", err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	pkgs, err := lint.Load(".", fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "ghlint: %v\n", err)
		return 2
	}

	findings := 0
	jdiags := []jsonDiagnostic{}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			// Partial type information can hide findings; surface it
			// loudly but keep analyzing what did check.
			fmt.Fprintf(stderr, "ghlint: %s: type error: %v\n", pkg.Path, terr)
		}
		if *jsonOut {
			for _, d := range lint.RunPackageAll(pkg, analyzers) {
				pos := pkg.Fset.Position(d.Pos)
				jdiags = append(jdiags, jsonDiagnostic{
					File:       relPos(pos.Filename),
					Line:       pos.Line,
					Col:        pos.Column,
					Analyzer:   d.Analyzer,
					Message:    d.Message,
					Suppressed: d.Suppressed,
				})
				if !d.Suppressed {
					findings++
				}
			}
			continue
		}
		for _, d := range lint.RunPackage(pkg, analyzers) {
			pos := pkg.Fset.Position(d.Pos)
			fmt.Fprintf(stdout, "%s: [%s] %s\n", relPos(pos.String()), d.Analyzer, d.Message)
			findings++
		}
	}
	if *jsonOut {
		if err := writeJSON(stdout, jdiags); err != nil {
			fmt.Fprintf(stderr, "ghlint: encoding findings: %v\n", err)
			return 2
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "ghlint: %d finding(s); fix them or add a reasoned "+
			"//lint:ghlint ignore <analyzer> <reason> directive\n", findings)
		return 1
	}
	return 0
}

// jsonDiagnostic is one finding in -json output. The field set is the
// review contract: file/line/col locate it, analyzer and message name
// it, suppressed distinguishes "silenced with a reason" from "live".
type jsonDiagnostic struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// writeJSON emits the findings as one stably-sorted, indented JSON
// array. Sorting here (not per package) makes the bytes a pure function
// of the analyzed source, independent of package enumeration order.
func writeJSON(w io.Writer, diags []jsonDiagnostic) error {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	out, err := json.MarshalIndent(diags, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", out)
	return err
}

// selectAnalyzers resolves the -analyzers flag against the suite.
func selectAnalyzers(csv string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	if csv == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*lint.Analyzer
	seen := make(map[string]bool)
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)",
				name, strings.Join(lint.AnalyzerNames(), ", "))
		}
		if !seen[name] {
			picked = append(picked, a)
			seen[name] = true
		}
	}
	sort.Slice(picked, func(i, j int) bool { return analyzerRank(picked[i].Name) < analyzerRank(picked[j].Name) })
	return picked, nil
}

// analyzerRank orders a subset like the full suite.
func analyzerRank(name string) int {
	for i, n := range lint.AnalyzerNames() {
		if n == name {
			return i
		}
	}
	return len(lint.AnalyzerNames())
}

// relPos trims the current directory prefix so findings print as
// clickable repo-relative paths.
func relPos(pos string) string {
	wd, err := os.Getwd()
	if err != nil {
		return pos
	}
	if rel, err := filepath.Rel(wd, pos); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return pos
}
