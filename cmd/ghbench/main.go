// Command ghbench regenerates the paper's tables and figures from the
// simulation substrate.
//
// Usage:
//
//	ghbench [-seed N] [-quick] [-parallel N] [id ...]
//	ghbench -list
//
// With no ids, every registered experiment runs in order. Ids follow the
// paper's numbering: tab1–tab4, fig3, fig6, fig8–fig14, plus the
// ablations (abl-dbupdate, abl-solver, abl-predictor, abl-noise).
package main

import (
	"flag"
	"fmt"
	"os"

	"greenhetero/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ghbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ghbench", flag.ContinueOnError)
	seed := fs.Int64("seed", 7, "measurement noise seed")
	quick := fs.Bool("quick", false, "shrink epoch counts for a fast pass")
	parallel := fs.Int("parallel", 0, "concurrent simulation runs per experiment (0 = one per CPU, 1 = serial; output is identical)")
	md := fs.Bool("md", false, "emit GitHub-flavored Markdown instead of aligned text")
	list := fs.Bool("list", false, "list experiment ids and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return nil
	}
	ids := fs.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	opts := experiments.Options{Seed: *seed, Quick: *quick, Parallelism: *parallel}
	for i, id := range ids {
		tbl, err := experiments.Run(id, opts)
		if err != nil {
			return err
		}
		if i > 0 {
			fmt.Println()
		}
		if *md {
			if _, err := tbl.WriteMarkdown(os.Stdout); err != nil {
				return err
			}
		} else if _, err := tbl.WriteTo(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
