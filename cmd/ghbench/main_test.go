package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-quick", "tab3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMultiple(t *testing.T) {
	if err := run([]string{"-quick", "tab1", "fig3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"fig99"}); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-frobnicate"}); err == nil {
		t.Error("bad flag should error")
	}
}

func TestRunMarkdown(t *testing.T) {
	if err := run([]string{"-quick", "-md", "tab2"}); err != nil {
		t.Fatal(err)
	}
}
