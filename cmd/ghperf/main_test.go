package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleReport builds a two-scenario report for the marshaling and gate
// tests. EpochsPerSec values are chosen so tolerance arithmetic is easy
// to read: the gate tolerance is 15%, so 1000 → 860 must trip it and
// 1000 → 900 must not.
func sampleReport(comb1, comb5 float64) Report {
	return Report{
		Schema:    Schema,
		Seed:      7,
		GoVersion: "go1.22",
		Scenarios: []ScenarioResult{
			{Name: "quick-4d-comb1", Epochs: 384, EpochsPerSec: comb1,
				NsPerEpochP50: 1200, NsPerEpochP99: 5000, AllocsPerEpoch: 3.5, BytesPerEpoch: 512},
			{Name: "quick-4d-comb5", Epochs: 384, EpochsPerSec: comb5,
				NsPerEpochP50: 1800, NsPerEpochP99: 7000, AllocsPerEpoch: 4.0, BytesPerEpoch: 640},
		},
	}
}

// writeBaseline commits rep as a gate baseline file and returns its path.
func writeBaseline(t *testing.T, rep Report) string {
	t.Helper()
	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, doc, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReportRoundTrip pins the JSON contract of the benchmark
// trajectory: the committed BENCH_PR<n>.json baselines must stay
// readable, so the field names and the schema tag are load-bearing.
func TestReportRoundTrip(t *testing.T) {
	rep := sampleReport(1000, 2000)
	doc, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(doc, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != Schema || back.Seed != rep.Seed || len(back.Scenarios) != 2 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Scenarios[0] != rep.Scenarios[0] || back.Scenarios[1] != rep.Scenarios[1] {
		t.Fatalf("round trip changed scenarios: %+v", back.Scenarios)
	}

	// The wire names are the cross-PR contract; renaming a Go field must
	// not silently rename the JSON key old baselines use.
	var raw map[string]any
	if err := json.Unmarshal(doc, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema", "seed", "goVersion", "scenarios"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("report JSON missing key %q: %s", key, doc)
		}
	}
	var rawScen []map[string]any
	scenDoc, _ := json.Marshal(rep.Scenarios)
	if err := json.Unmarshal(scenDoc, &rawScen); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"name", "epochs", "epochsPerSec", "nsPerEpochP50", "nsPerEpochP99", "allocsPerEpoch", "bytesPerEpoch"} {
		if _, ok := rawScen[0][key]; !ok {
			t.Errorf("scenario JSON missing key %q: %s", key, scenDoc)
		}
	}
}

func TestCheckGateWithinTolerance(t *testing.T) {
	base := writeBaseline(t, sampleReport(1000, 2000))
	// 10% down on one scenario, 5% up on the other: both inside the 15%
	// tolerance band, so the gate passes and labels both "ok".
	var out bytes.Buffer
	if err := checkGate(sampleReport(900, 2100), base, &out); err != nil {
		t.Fatalf("checkGate within tolerance failed: %v\n%s", err, out.String())
	}
	if strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("gate output flags a regression inside tolerance:\n%s", out.String())
	}
	if got := strings.Count(out.String(), "ok"); got != 2 {
		t.Errorf("gate output has %d ok lines, want 2:\n%s", got, out.String())
	}
}

func TestCheckGateRegression(t *testing.T) {
	base := writeBaseline(t, sampleReport(1000, 2000))
	// 860/1000 = -14% is fine; 1600/2000 = -20% trips the 15% gate.
	var out bytes.Buffer
	err := checkGate(sampleReport(860, 1600), base, &out)
	if err == nil {
		t.Fatalf("checkGate missed a 20%% regression:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "regressed") {
		t.Errorf("gate error %q does not name the regression", err)
	}
	if got := strings.Count(out.String(), "REGRESSION"); got != 1 {
		t.Errorf("gate output flags %d regressions, want exactly 1 (comb5):\n%s", got, out.String())
	}
}

// TestCheckGateSkipsUnmatched pins the quick-vs-full matching rule: the
// baseline may hold year-long entries a -quick run never produces, and a
// new scenario may not be in the baseline yet; both sides are skipped
// rather than failed.
func TestCheckGateSkipsUnmatched(t *testing.T) {
	baseRep := sampleReport(1000, 2000)
	baseRep.Scenarios = append(baseRep.Scenarios, ScenarioResult{Name: "year-comb1", EpochsPerSec: 500})
	base := writeBaseline(t, baseRep)

	got := sampleReport(950, 1900)
	got.Scenarios = append(got.Scenarios, ScenarioResult{Name: "quick-new-scenario", EpochsPerSec: 100})
	var out bytes.Buffer
	if err := checkGate(got, base, &out); err != nil {
		t.Fatalf("checkGate failed on unmatched scenarios: %v\n%s", err, out.String())
	}
	for _, absent := range []string{"year-comb1", "quick-new-scenario"} {
		if strings.Contains(out.String(), absent) {
			t.Errorf("gate output mentions unmatched scenario %q:\n%s", absent, out.String())
		}
	}
}

func TestCheckGateBadBaseline(t *testing.T) {
	var out bytes.Buffer
	if err := checkGate(sampleReport(1000, 2000), filepath.Join(t.TempDir(), "missing.json"), &out); err == nil {
		t.Error("checkGate accepted a missing baseline file")
	}

	wrong := sampleReport(1000, 2000)
	wrong.Schema = "some-other-tool/v9"
	path := writeBaseline(t, wrong)
	err := checkGate(sampleReport(1000, 2000), path, &out)
	if err == nil {
		t.Fatal("checkGate accepted a baseline with a foreign schema")
	}
	if !strings.Contains(err.Error(), "schema") {
		t.Errorf("schema mismatch error %q does not name the schema", err)
	}
}

func TestRunFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nosuchflag"}, &out); err == nil {
		t.Error("run accepted an unknown flag")
	}
	if err := run([]string{"-epochs", "banana"}, &out); err == nil {
		t.Error("run accepted a non-integer -epochs")
	}
}

// TestRunQuickJSON drives the full path end to end at a tiny epoch
// count: two quick scenarios, JSON to stdout, the same bytes to -out,
// and a gate comparison against the run's own numbers scaled down 10×
// (a 10× headroom cannot be erased by 3-epoch timing jitter, so the
// gate must pass deterministically).
func TestRunQuickJSON(t *testing.T) {
	outFile := filepath.Join(t.TempDir(), "bench.json")
	var stdout bytes.Buffer
	if err := run([]string{"-quick", "-epochs", "3", "-json", "-out", outFile}, &stdout); err != nil {
		t.Fatalf("run(-quick -epochs 3 -json): %v", err)
	}
	var rep Report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if rep.Schema != Schema {
		t.Errorf("report schema = %q, want %q", rep.Schema, Schema)
	}
	if len(rep.Scenarios) != 3 {
		t.Fatalf("quick run produced %d scenarios, want 2 single-rack + 1 fleet", len(rep.Scenarios))
	}
	for _, s := range rep.Scenarios {
		if s.Epochs != 3 {
			t.Errorf("%s ran %d epochs, want the -epochs override of 3", s.Name, s.Epochs)
		}
		if s.EpochsPerSec <= 0 {
			t.Errorf("%s reports %v epochs/sec, want > 0", s.Name, s.EpochsPerSec)
		}
	}
	if fleet := rep.Scenarios[2]; fleet.Name != "quick-fleet-64" || fleet.Racks != 64 {
		t.Errorf("fleet scenario = %+v, want quick-fleet-64 with 64 racks", fleet)
	}
	onDisk, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, stdout.Bytes()) {
		t.Errorf("-out file differs from -json stdout")
	}

	slow := rep
	slow.Scenarios = append([]ScenarioResult(nil), rep.Scenarios...)
	for i := range slow.Scenarios {
		slow.Scenarios[i].EpochsPerSec *= 0.1
	}
	slowFile := writeBaseline(t, slow)
	var gateOut bytes.Buffer
	if err := run([]string{"-quick", "-epochs", "3", "-gate", slowFile}, &gateOut); err != nil {
		t.Fatalf("gate run against slowed baseline failed: %v\n%s", err, gateOut.String())
	}
	if got := strings.Count(gateOut.String(), "gate "); got != 3 {
		t.Errorf("gate run compared %d scenarios, want 3:\n%s", got, gateOut.String())
	}
}

// TestRacksFieldOmitted pins the wire shape: single-rack entries must
// not grow a "racks" key (old baselines round-trip unchanged), fleet
// entries must carry one.
func TestRacksFieldOmitted(t *testing.T) {
	single, _ := json.Marshal(ScenarioResult{Name: "s", Epochs: 1})
	if strings.Contains(string(single), "racks") {
		t.Errorf("single-rack scenario JSON has a racks key: %s", single)
	}
	fleet, _ := json.Marshal(ScenarioResult{Name: "f", Epochs: 1, Racks: 64})
	if !strings.Contains(string(fleet), `"racks":64`) {
		t.Errorf("fleet scenario JSON missing racks key: %s", fleet)
	}
}
