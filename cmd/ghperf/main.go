// Command ghperf measures the epoch hot path: it runs seeded
// macro-scenarios (a year of 15-minute epochs on the paper's rack
// combinations, adaptive GreenHetero policy end to end) and reports
// epochs/sec, per-epoch latency percentiles, and per-epoch allocation
// rates. Fleet scenarios drive the site coordinator instead of a single
// session; for those, epochsPerSec counts rack·epochs per second and the
// latency columns are the mean site epoch (the coordinator's epoch loop
// is not observable from outside cluster.Run). Its JSON output is the
// repository's benchmark trajectory: each perf PR commits a
// `BENCH_PR<n>.json` baseline at the repo root, and CI re-runs the quick
// scenarios with `-gate` against the committed file, failing on an
// epochs/sec regression beyond the tolerance.
//
// Usage:
//
//	ghperf [-quick] [-seed N] [-json] [-out file] [-gate baseline.json] [-epochs N]
//
// The scenarios are deterministic (seeded noise, fixed traces); only the
// wall-clock measurements vary between machines. Gate comparisons are
// therefore matched by scenario name — quick runs compare against the
// baseline's quick entries — and use a generous relative tolerance.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"greenhetero/internal/cluster"
	"greenhetero/internal/policy"
	"greenhetero/internal/server"
	"greenhetero/internal/sim"
	"greenhetero/internal/solar"
	"greenhetero/internal/workload"
)

// Schema identifies the JSON layout; bump on incompatible changes.
const Schema = "greenhetero-bench/v1"

// GateTolerance is the allowed relative epochs/sec regression before
// -gate fails (the ISSUE 6 policy: >15 % fails).
const GateTolerance = 0.15

// ScenarioResult is one macro-scenario's measurement. Racks is set only
// for fleet scenarios; there EpochsPerSec counts rack·epochs per second
// and the allocation rates are per rack·epoch.
type ScenarioResult struct {
	Name           string  `json:"name"`
	Epochs         int     `json:"epochs"`
	Racks          int     `json:"racks,omitempty"`
	EpochsPerSec   float64 `json:"epochsPerSec"`
	NsPerEpochP50  int64   `json:"nsPerEpochP50"`
	NsPerEpochP99  int64   `json:"nsPerEpochP99"`
	AllocsPerEpoch float64 `json:"allocsPerEpoch"`
	BytesPerEpoch  float64 `json:"bytesPerEpoch"`
}

// Report is the full JSON document.
type Report struct {
	Schema    string           `json:"schema"`
	Seed      int64            `json:"seed"`
	GoVersion string           `json:"goVersion"`
	Scenarios []ScenarioResult `json:"scenarios"`
}

// scenario is a named macro-scenario builder. racks > 0 makes it a
// fleet scenario: that many rack replicas run under the site coordinator
// (hierarchical-par allocator, per-CPU parallelism) instead of one
// sim.Session.
type scenario struct {
	name   string
	days   int
	combo  []string // server catalog ids, 5 servers per group (Table IV)
	policy policy.Policy
	racks  int
}

// scenarios returns the macro-scenario set. Quick mode keeps only the
// short variants (CI-sized); the full set adds the year-long runs whose
// numbers headline BENCH_PR6.json and the week-long fleet run behind
// BENCH_PR8.json.
func scenarios(quick bool) []scenario {
	quickSet := []scenario{
		{"quick-4d-comb1", 4, []string{server.XeonE52620, server.CoreI54460}, policy.Solver{Adaptive: true}, 0},
		{"quick-4d-comb5", 4, []string{server.XeonE52620, server.XeonE52603, server.CoreI54460}, policy.Solver{Adaptive: true}, 0},
		{"quick-fleet-64", 1, []string{server.XeonE52620, server.CoreI54460}, policy.Solver{Adaptive: true}, 64},
	}
	if quick {
		return quickSet
	}
	return append(quickSet,
		scenario{"year-comb1", 365, []string{server.XeonE52620, server.CoreI54460}, policy.Solver{Adaptive: true}, 0},
		scenario{"year-comb5", 365, []string{server.XeonE52620, server.XeonE52603, server.CoreI54460}, policy.Solver{Adaptive: true}, 0},
		scenario{"week-fleet-64", 7, []string{server.XeonE52620, server.CoreI54460}, policy.Solver{Adaptive: true}, 64},
	)
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ghperf:", err)
		os.Exit(1)
	}
}

// run is the testable driver body: flags in, report (text or JSON) out,
// error when a flag is invalid, a scenario fails, or the gate trips.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ghperf", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "run only the short scenarios (CI-sized)")
	seed := fs.Int64("seed", 7, "measurement noise seed")
	asJSON := fs.Bool("json", false, "emit the JSON report instead of aligned text")
	out := fs.String("out", "", "also write the JSON report to this file")
	gate := fs.String("gate", "", "compare epochs/sec against this committed baseline; fail on >15% regression")
	epochsOverride := fs.Int("epochs", 0, "override each scenario's epoch count (testing hook)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the scenario runs to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	rep := Report{Schema: Schema, Seed: *seed, GoVersion: runtime.Version()}
	for _, sc := range scenarios(*quick) {
		res, err := runScenario(sc, *seed, *epochsOverride)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", sc.name, err)
		}
		rep.Scenarios = append(rep.Scenarios, res)
		if !*asJSON {
			fmt.Fprintf(stdout, "%-16s  epochs %6d  %10.0f epochs/sec  p50 %8s  p99 %8s  %6.1f allocs/epoch  %8.0f B/epoch\n",
				res.Name, res.Epochs, res.EpochsPerSec,
				time.Duration(res.NsPerEpochP50), time.Duration(res.NsPerEpochP99),
				res.AllocsPerEpoch, res.BytesPerEpoch)
		}
	}

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if *asJSON {
		if _, err := stdout.Write(doc); err != nil {
			return err
		}
	}
	if *out != "" {
		if err := os.WriteFile(*out, doc, 0o644); err != nil {
			return err
		}
	}
	if *gate != "" {
		return checkGate(rep, *gate, stdout)
	}
	return nil
}

// runScenario builds the rack, tiles the solar trace to the scenario
// length, and times every Session.Step. Fleet scenarios route through
// runFleetScenario instead.
func runScenario(sc scenario, seed int64, epochsOverride int) (ScenarioResult, error) {
	if sc.racks > 0 {
		return runFleetScenario(sc, seed, epochsOverride)
	}
	groups := make([]server.Group, 0, len(sc.combo))
	for _, id := range sc.combo {
		spec, err := server.Lookup(id)
		if err != nil {
			return ScenarioResult{}, err
		}
		groups = append(groups, server.Group{Spec: spec, Count: 5})
	}
	rack, err := server.NewRack("ghperf-"+sc.name, groups...)
	if err != nil {
		return ScenarioResult{}, err
	}
	tr, err := solar.Generate(solar.Config{
		Profile:   solar.High,
		PeakWatts: 2200,
		Days:      sc.days,
		Step:      15 * time.Minute,
		Seed:      1,
	})
	if err != nil {
		return ScenarioResult{}, err
	}
	w, err := workload.Lookup(workload.SPECjbb)
	if err != nil {
		return ScenarioResult{}, err
	}
	epochs := tr.Len()
	if epochsOverride > 0 && epochsOverride < epochs {
		epochs = epochsOverride
	}
	sess, err := sim.NewSession(sim.Config{
		Rack:        rack,
		Workload:    w,
		Policy:      sc.policy,
		Solar:       tr,
		Epochs:      epochs,
		GridBudgetW: 1000,
		Seed:        seed,
	})
	if err != nil {
		return ScenarioResult{}, err
	}

	durations := make([]int64, 0, epochs)
	var msBefore, msAfter runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	for !sess.Done() {
		t0 := time.Now()
		if _, err := sess.Step(); err != nil {
			return ScenarioResult{}, err
		}
		durations = append(durations, time.Since(t0).Nanoseconds())
	}
	total := time.Since(start)
	runtime.ReadMemStats(&msAfter)

	sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
	n := len(durations)
	res := ScenarioResult{
		Name:           sc.name,
		Epochs:         n,
		EpochsPerSec:   float64(n) / total.Seconds(),
		NsPerEpochP50:  durations[(n-1)*50/100],
		NsPerEpochP99:  durations[(n-1)*99/100],
		AllocsPerEpoch: float64(msAfter.Mallocs-msBefore.Mallocs) / float64(n),
		BytesPerEpoch:  float64(msAfter.TotalAlloc-msBefore.TotalAlloc) / float64(n),
	}
	return res, nil
}

// runFleetScenario replicates the combo rack sc.racks times and times
// one cluster.Run through the site coordinator: hierarchical-par
// allocator, shared site battery, per-CPU rack parallelism. The site PV
// plant and grid budget scale with the rack count so the per-rack
// operating point matches the single-rack scenarios. cluster.Run owns
// the epoch loop, so the latency columns report the mean site epoch
// rather than sampled percentiles, and the throughput and allocation
// rates are per rack·epoch.
func runFleetScenario(sc scenario, seed int64, epochsOverride int) (ScenarioResult, error) {
	groups := make([]server.Group, 0, len(sc.combo))
	for _, id := range sc.combo {
		spec, err := server.Lookup(id)
		if err != nil {
			return ScenarioResult{}, err
		}
		groups = append(groups, server.Group{Spec: spec, Count: 5})
	}
	tr, err := solar.Generate(solar.Config{
		Profile:   solar.High,
		PeakWatts: 2200 * float64(sc.racks),
		Days:      sc.days,
		Step:      15 * time.Minute,
		Seed:      1,
	})
	if err != nil {
		return ScenarioResult{}, err
	}
	w, err := workload.Lookup(workload.SPECjbb)
	if err != nil {
		return ScenarioResult{}, err
	}
	racks := make([]cluster.RackConfig, sc.racks)
	for i := range racks {
		rack, err := server.NewRack(fmt.Sprintf("ghperf-%s-%03d", sc.name, i), groups...)
		if err != nil {
			return ScenarioResult{}, err
		}
		racks[i] = cluster.RackConfig{Rack: rack, Workload: w, Policy: sc.policy}
	}
	epochs := tr.Len()
	if epochsOverride > 0 && epochsOverride < epochs {
		epochs = epochsOverride
	}
	cfg := cluster.Config{
		Racks:           racks,
		Solar:           tr,
		Allocator:       cluster.HierarchicalPAR{},
		SiteGridBudgetW: 1000 * float64(sc.racks),
		Epochs:          epochs,
		Seed:            seed,
	}

	var msBefore, msAfter runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	res, err := cluster.Run(cfg)
	if err != nil {
		return ScenarioResult{}, err
	}
	total := time.Since(start)
	runtime.ReadMemStats(&msAfter)

	n := len(res.Site)
	rackEpochs := float64(n) * float64(sc.racks)
	meanNs := total.Nanoseconds() / int64(n)
	return ScenarioResult{
		Name:           sc.name,
		Epochs:         n,
		Racks:          sc.racks,
		EpochsPerSec:   rackEpochs / total.Seconds(),
		NsPerEpochP50:  meanNs,
		NsPerEpochP99:  meanNs,
		AllocsPerEpoch: float64(msAfter.Mallocs-msBefore.Mallocs) / rackEpochs,
		BytesPerEpoch:  float64(msAfter.TotalAlloc-msBefore.TotalAlloc) / rackEpochs,
	}, nil
}

// checkGate compares rep against the committed baseline, scenario name
// by scenario name, and fails on an epochs/sec regression beyond
// GateTolerance. Scenarios missing from either side are skipped (the
// baseline may carry full-run entries a -quick gate run never produces).
func checkGate(rep Report, path string, stdout io.Writer) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("gate baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("gate baseline %s: %w", path, err)
	}
	if base.Schema != Schema {
		return fmt.Errorf("gate baseline %s: schema %q, want %q", path, base.Schema, Schema)
	}
	baseByName := make(map[string]ScenarioResult, len(base.Scenarios))
	for _, s := range base.Scenarios {
		baseByName[s.Name] = s
	}
	var failed bool
	for _, got := range rep.Scenarios {
		want, ok := baseByName[got.Name]
		if !ok || want.EpochsPerSec <= 0 {
			continue
		}
		ratio := got.EpochsPerSec / want.EpochsPerSec
		status := "ok"
		if ratio < 1-GateTolerance {
			status = "REGRESSION"
			failed = true
		}
		fmt.Fprintf(stdout, "gate %-16s  baseline %10.0f  now %10.0f  (%+.1f%%)  %s\n",
			got.Name, want.EpochsPerSec, got.EpochsPerSec, 100*(ratio-1), status)
	}
	if failed {
		return fmt.Errorf("epochs/sec regressed more than %.0f%% vs %s", 100*GateTolerance, path)
	}
	return nil
}
