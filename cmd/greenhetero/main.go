// Command greenhetero runs one simulated rack under a chosen policy and
// prints the per-epoch record plus a summary — the interactive front end
// to the library.
//
// Usage:
//
//	greenhetero [-combo Comb1] [-workload specjbb] [-policy GreenHetero]
//	            [-trace high|low] [-epochs 96] [-grid 1000] [-panel 2200]
//	            [-seed 7] [-every 4] [-compare]
//
// With -compare, all five Table III policies run on identical conditions
// and a comparison summary is printed instead of the epoch record.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"greenhetero/internal/policy"
	"greenhetero/internal/scenario"
	"greenhetero/internal/server"
	"greenhetero/internal/sim"
	"greenhetero/internal/solar"
	"greenhetero/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "greenhetero:", err)
		os.Exit(1)
	}
}

// comboServers mirrors Table IV.
var comboServers = map[string][]string{
	"Comb1": {server.XeonE52620, server.CoreI54460},
	"Comb2": {server.XeonE52603, server.CoreI54460},
	"Comb3": {server.XeonE52650, server.XeonE52620},
	"Comb4": {server.CoreI78700K, server.CoreI54460},
	"Comb5": {server.XeonE52620, server.XeonE52603, server.CoreI54460},
	"Comb6": {server.XeonE52620, server.TitanXp},
}

func run(args []string) error {
	fs := flag.NewFlagSet("greenhetero", flag.ContinueOnError)
	comboFlag := fs.String("combo", "Comb1", "server combination (Comb1..Comb6)")
	workloadFlag := fs.String("workload", workload.SPECjbb, "workload id (see ghbench tab1)")
	policyFlag := fs.String("policy", "GreenHetero", "allocation policy (Table III name)")
	traceFlag := fs.String("trace", "high", "solar trace: high or low")
	epochs := fs.Int("epochs", 96, "number of 15-minute scheduling epochs")
	grid := fs.Float64("grid", 1000, "grid power budget (W)")
	panel := fs.Float64("panel", 2200, "PV array peak output (W)")
	seed := fs.Int64("seed", 7, "measurement noise seed")
	every := fs.Int("every", 4, "print every Nth epoch")
	compare := fs.Bool("compare", false, "compare all five policies instead")
	parallel := fs.Int("parallel", 0, "concurrent runs for -compare (0 = one per CPU, 1 = serial)")
	csvPath := fs.String("csv", "", "also write the per-epoch record to this CSV file")
	scenarioPath := fs.String("scenario", "", "load the run from a JSON scenario file (overrides combo/workload/trace flags)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *epochs < 1 || *every < 1 {
		return errors.New("epochs and every must be positive")
	}

	if *scenarioPath != "" {
		sc, err := scenario.LoadFile(*scenarioPath)
		if err != nil {
			return err
		}
		cfg, err := sc.Build()
		if err != nil {
			return err
		}
		if *compare {
			return runCompare(cfg, *parallel)
		}
		res, err := sim.Run(cfg)
		if err != nil {
			return err
		}
		printRun(res, *every)
		return writeCSVIfAsked(res, *csvPath)
	}

	serverIDs, ok := comboServers[*comboFlag]
	if !ok {
		return fmt.Errorf("unknown combo %q (have Comb1..Comb6)", *comboFlag)
	}
	groups := make([]server.Group, 0, len(serverIDs))
	for _, id := range serverIDs {
		spec, err := server.Lookup(id)
		if err != nil {
			return err
		}
		groups = append(groups, server.Group{Spec: spec, Count: 5})
	}
	rack, err := server.NewRack(strings.ToLower(*comboFlag), groups...)
	if err != nil {
		return err
	}
	w, err := workload.Lookup(*workloadFlag)
	if err != nil {
		return err
	}
	profile, err := solar.ParseProfile(*traceFlag)
	if err != nil {
		return err
	}
	generate := solar.DefaultHigh
	if profile == solar.Low {
		generate = solar.DefaultLow
	}
	tr, err := generate(*panel)
	if err != nil {
		return err
	}
	cfg := sim.Config{
		Rack:        rack,
		Workload:    w,
		Solar:       tr,
		Epochs:      *epochs,
		GridBudgetW: *grid,
		Seed:        *seed,
	}

	if *compare {
		return runCompare(cfg, *parallel)
	}

	p, err := policy.ByName(*policyFlag)
	if err != nil {
		return err
	}
	cfg.Policy = p
	res, err := sim.Run(cfg)
	if err != nil {
		return err
	}
	printRun(res, *every)
	return writeCSVIfAsked(res, *csvPath)
}

// writeCSVIfAsked exports the per-epoch record when a path was given.
func writeCSVIfAsked(res *sim.Result, path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := res.WriteCSV(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func printRun(res *sim.Result, every int) {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "epoch\thour\tcase\tren(W)\tsupply(W)\tPAR\tperf\tEPU\tbatt out\tbatt in\tgrid\tSoC")
	for i, e := range res.Epochs {
		if i%every != 0 {
			continue
		}
		par := 0.0
		var sum float64
		for _, f := range e.Fractions {
			sum += f
		}
		if sum > 0 {
			par = e.Fractions[0] / sum
		}
		fmt.Fprintf(tw, "%d\t%.1f\t%s\t%.0f\t%.0f\t%.2f\t%.0f\t%.2f\t%.0f\t%.0f\t%.0f\t%.2f\n",
			e.Epoch, float64(e.Epoch)/4, e.Case, e.RenewableW, e.SupplyW, par,
			e.Perf, e.EPU, e.BatteryOutW, e.BatteryInW, e.GridW, e.BatterySoC)
	}
	tw.Flush()
	fmt.Printf("\npolicy=%s workload=%s epochs=%d\n", res.Policy, res.Workload, len(res.Epochs))
	fmt.Printf("mean perf=%.0f (scarce %.0f)  mean EPU=%.3f (scarce %.3f)  mean PAR=%.0f%%  grid=%.0f Wh\n",
		res.MeanPerf(), res.MeanPerfScarce(), res.MeanEPU(), res.MeanEPUScarce(),
		res.MeanPAR()*100, res.GridEnergyWh())
}

func runCompare(cfg sim.Config, parallel int) error {
	results, err := sim.CompareParallel(cfg, policy.All(), parallel)
	if err != nil {
		return err
	}
	base := results["Uniform"]
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tmean perf\tvs Uniform\tscarce perf\tvs Uniform\tmean EPU\tgrid (Wh)")
	for _, p := range policy.All() {
		r := results[p.Name()]
		fmt.Fprintf(tw, "%s\t%.0f\t%.2fx\t%.0f\t%.2fx\t%.3f\t%.0f\n",
			p.Name(), r.MeanPerf(), ratio(r.MeanPerf(), base.MeanPerf()),
			r.MeanPerfScarce(), ratio(r.MeanPerfScarce(), base.MeanPerfScarce()),
			r.MeanEPU(), r.GridEnergyWh())
	}
	return tw.Flush()
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
