// Command greenhetero runs one simulated rack under a chosen policy and
// prints the per-epoch record plus a summary — the interactive front end
// to the library.
//
// Usage:
//
//	greenhetero [-combo Comb1] [-workload specjbb] [-policy GreenHetero]
//	            [-trace high|low] [-epochs 96] [-grid 1000] [-panel 2200]
//	            [-seed 7] [-every 4] [-compare]
//
// With -compare, all five Table III policies run on identical conditions
// and a comparison summary is printed instead of the epoch record.
//
// With -fleet N, N replicas of the rack run as a fleet under the site
// coordinator: each epoch a site allocator (-alloc) splits the shared
// PV feed, site battery bank, and site grid budget (-site-grid) across
// racks, and the site-level epoch trace is printed.
//
// Scenario files with a "stress" block run as seeded failure storms:
// the chaos schedule plays out over the fleet, a stress summary is
// printed, and -report writes the full JSON stress report. -validate
// parses and checks any scenario file without running it.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"greenhetero/internal/chaos"
	"greenhetero/internal/cluster"
	"greenhetero/internal/policy"
	"greenhetero/internal/scenario"
	"greenhetero/internal/server"
	"greenhetero/internal/sim"
	"greenhetero/internal/solar"
	"greenhetero/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "greenhetero:", err)
		os.Exit(1)
	}
}

// comboServers mirrors Table IV.
var comboServers = map[string][]string{
	"Comb1": {server.XeonE52620, server.CoreI54460},
	"Comb2": {server.XeonE52603, server.CoreI54460},
	"Comb3": {server.XeonE52650, server.XeonE52620},
	"Comb4": {server.CoreI78700K, server.CoreI54460},
	"Comb5": {server.XeonE52620, server.XeonE52603, server.CoreI54460},
	"Comb6": {server.XeonE52620, server.TitanXp},
}

func run(args []string) error {
	fs := flag.NewFlagSet("greenhetero", flag.ContinueOnError)
	comboFlag := fs.String("combo", "Comb1", "server combination (Comb1..Comb6)")
	workloadFlag := fs.String("workload", workload.SPECjbb, "workload id (see ghbench tab1)")
	policyFlag := fs.String("policy", "GreenHetero", "allocation policy (Table III name)")
	traceFlag := fs.String("trace", "high", "solar trace: high or low")
	epochs := fs.Int("epochs", 96, "number of 15-minute scheduling epochs")
	grid := fs.Float64("grid", 1000, "grid power budget (W)")
	panel := fs.Float64("panel", 2200, "PV array peak output (W)")
	seed := fs.Int64("seed", 7, "measurement noise seed")
	every := fs.Int("every", 4, "print every Nth epoch")
	compare := fs.Bool("compare", false, "compare all five policies instead")
	parallel := fs.Int("parallel", 0, "concurrent runs for -compare (0 = one per CPU, 1 = serial)")
	csvPath := fs.String("csv", "", "also write the per-epoch record to this CSV file")
	scenarioPath := fs.String("scenario", "", "load the run from a JSON scenario file (overrides combo/workload/trace flags)")
	validatePath := fs.String("validate", "", "parse and check a scenario file, then exit without running")
	reportPath := fs.String("report", "", "write the JSON stress report of a stress scenario run to this file")
	fleetN := fs.Int("fleet", 0, "run N rack replicas as a fleet under the site coordinator")
	allocFlag := fs.String("alloc", "hierarchical-par", "fleet allocator: uniform, demand-proportional, hierarchical-par")
	siteGrid := fs.Float64("site-grid", 0, "site grid budget (W) for -fleet (0 = grid × racks)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *epochs < 1 || *every < 1 {
		return errors.New("epochs and every must be positive")
	}

	if *validatePath != "" {
		return validateScenario(*validatePath)
	}

	if *scenarioPath != "" {
		sc, err := scenario.LoadFile(*scenarioPath)
		if err != nil {
			return err
		}
		if sc.Stress != nil {
			if *compare {
				return errors.New("stress scenarios do not support -compare")
			}
			storm, err := sc.BuildStorm()
			if err != nil {
				return err
			}
			storm.Fleet.Parallelism = *parallel
			res, rep, err := chaos.Run(storm)
			if err != nil {
				return err
			}
			printStorm(res, rep)
			return writeReportIfAsked(rep, *reportPath)
		}
		if sc.Fleet != nil {
			if *compare {
				return errors.New("fleet scenarios do not support -compare")
			}
			fcfg, err := sc.BuildFleet()
			if err != nil {
				return err
			}
			fcfg.Parallelism = *parallel
			res, err := cluster.Run(fcfg)
			if err != nil {
				return err
			}
			printFleet(res, *every)
			return nil
		}
		cfg, err := sc.Build()
		if err != nil {
			return err
		}
		if *compare {
			return runCompare(cfg, *parallel)
		}
		res, err := sim.Run(cfg)
		if err != nil {
			return err
		}
		printRun(res, *every)
		return writeCSVIfAsked(res, *csvPath)
	}

	serverIDs, ok := comboServers[*comboFlag]
	if !ok {
		return fmt.Errorf("unknown combo %q (have Comb1..Comb6)", *comboFlag)
	}
	groups := make([]server.Group, 0, len(serverIDs))
	for _, id := range serverIDs {
		spec, err := server.Lookup(id)
		if err != nil {
			return err
		}
		groups = append(groups, server.Group{Spec: spec, Count: 5})
	}
	rack, err := server.NewRack(strings.ToLower(*comboFlag), groups...)
	if err != nil {
		return err
	}
	w, err := workload.Lookup(*workloadFlag)
	if err != nil {
		return err
	}
	profile, err := solar.ParseProfile(*traceFlag)
	if err != nil {
		return err
	}
	generate := solar.DefaultHigh
	if profile == solar.Low {
		generate = solar.DefaultLow
	}
	tr, err := generate(*panel)
	if err != nil {
		return err
	}
	if *fleetN > 0 {
		if *compare {
			return errors.New("-fleet does not support -compare")
		}
		p, err := policy.ByName(*policyFlag)
		if err != nil {
			return err
		}
		alloc, err := cluster.AllocatorByName(*allocFlag)
		if err != nil {
			return err
		}
		racks := make([]cluster.RackConfig, *fleetN)
		for i := range racks {
			r, err := server.NewRack(fmt.Sprintf("%s-%03d", strings.ToLower(*comboFlag), i), groups...)
			if err != nil {
				return err
			}
			racks[i] = cluster.RackConfig{Rack: r, Workload: w, Policy: p}
		}
		sg := *siteGrid
		if sg == 0 {
			sg = *grid * float64(*fleetN)
		}
		res, err := cluster.Run(cluster.Config{
			Racks:           racks,
			Solar:           tr,
			Allocator:       alloc,
			SiteGridBudgetW: sg,
			Epochs:          *epochs,
			Seed:            *seed,
			Parallelism:     *parallel,
		})
		if err != nil {
			return err
		}
		printFleet(res, *every)
		return nil
	}

	cfg := sim.Config{
		Rack:        rack,
		Workload:    w,
		Solar:       tr,
		Epochs:      *epochs,
		GridBudgetW: *grid,
		Seed:        *seed,
	}

	if *compare {
		return runCompare(cfg, *parallel)
	}

	p, err := policy.ByName(*policyFlag)
	if err != nil {
		return err
	}
	cfg.Policy = p
	res, err := sim.Run(cfg)
	if err != nil {
		return err
	}
	printRun(res, *every)
	return writeCSVIfAsked(res, *csvPath)
}

// validateScenario parses and checks a scenario file — including its
// stress block and full storm expansion — without running anything.
func validateScenario(path string) error {
	sc, err := scenario.LoadFile(path)
	if err != nil {
		return err
	}
	switch {
	case sc.Stress != nil:
		storm, err := sc.BuildStorm()
		if err != nil {
			return err
		}
		fmt.Printf("scenario OK: %s (stress: %d racks, %d epochs, %d chaos events)\n",
			sc.Name, len(storm.Fleet.Racks), sc.Epochs, len(storm.Chaos.Events))
	case sc.Fleet != nil:
		fcfg, err := sc.BuildFleet()
		if err != nil {
			return err
		}
		fmt.Printf("scenario OK: %s (fleet: %d racks, %d epochs)\n", sc.Name, len(fcfg.Racks), sc.Epochs)
	default:
		if _, err := sc.Build(); err != nil {
			return err
		}
		fmt.Printf("scenario OK: %s (single rack, %d epochs)\n", sc.Name, sc.Epochs)
	}
	return nil
}

// printStorm prints a stress run's summary.
func printStorm(res *cluster.FleetResult, rep *chaos.Report) {
	fmt.Printf("storm %s: seed=%d racks=%d epochs=%d allocator=%s events=%d\n",
		rep.Scenario, rep.Seed, rep.Racks, rep.Epochs, rep.Allocator, len(rep.Events))
	fmt.Printf("fleet perf=%.0f  mean EPU=%.3f  grid=%.0f Wh (%.0f cost units)  redistributed=%.0f Wh\n",
		rep.TotalPerf, rep.MeanEPU, rep.TotalGridWh, rep.GridCostUnits, rep.RedistributedWh)
	fmt.Printf("degraded epochs=%d/%d  failed rack-epochs=%d  SLO violations=%d  quarantines=%d (mean recovery %.1f epochs)\n",
		rep.DegradedEpochs, len(res.Site), rep.FailedEpochs, rep.SLOViolations,
		rep.Quarantines, rep.MeanRecoveryEpochs)
	if rep.DaemonCrashes > 0 || rep.DaemonRecoveries > 0 {
		fmt.Printf("daemon crashes=%d recoveries=%d\n", rep.DaemonCrashes, rep.DaemonRecoveries)
	}
}

// writeReportIfAsked writes the stress report JSON when a path was
// given.
func writeReportIfAsked(rep *chaos.Report, path string) error {
	if path == "" {
		return nil
	}
	b, err := rep.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// writeCSVIfAsked exports the per-epoch record when a path was given.
func writeCSVIfAsked(res *sim.Result, path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := res.WriteCSV(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func printRun(res *sim.Result, every int) {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "epoch\thour\tcase\tren(W)\tsupply(W)\tPAR\tperf\tEPU\tbatt out\tbatt in\tgrid\tSoC")
	for i, e := range res.Epochs {
		if i%every != 0 {
			continue
		}
		par := 0.0
		var sum float64
		for _, f := range e.Fractions {
			sum += f
		}
		if sum > 0 {
			par = e.Fractions[0] / sum
		}
		fmt.Fprintf(tw, "%d\t%.1f\t%s\t%.0f\t%.0f\t%.2f\t%.0f\t%.2f\t%.0f\t%.0f\t%.0f\t%.2f\n",
			e.Epoch, float64(e.Epoch)/4, e.Case, e.RenewableW, e.SupplyW, par,
			e.Perf, e.EPU, e.BatteryOutW, e.BatteryInW, e.GridW, e.BatterySoC)
	}
	tw.Flush()
	fmt.Printf("\npolicy=%s workload=%s epochs=%d\n", res.Policy, res.Workload, len(res.Epochs))
	fmt.Printf("mean perf=%.0f (scarce %.0f)  mean EPU=%.3f (scarce %.3f)  mean PAR=%.0f%%  grid=%.0f Wh\n",
		res.MeanPerf(), res.MeanPerfScarce(), res.MeanEPU(), res.MeanEPUScarce(),
		res.MeanPAR()*100, res.GridEnergyWh())
}

// printFleet prints the site-level epoch trace and fleet summary.
func printFleet(res *cluster.FleetResult, every int) {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "epoch\thour\tren(W)\tbid(W)\tsupply(W)\tgrid(W)\tbatt out\tbatt in\tSoC")
	for i, e := range res.Site {
		if i%every != 0 {
			continue
		}
		fmt.Fprintf(tw, "%d\t%.1f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.2f\n",
			e.Epoch, float64(e.Epoch)/4, e.RenewableW, e.BidW, e.SupplyW,
			e.GridW, e.BatteryOutW, e.BatteryInW, e.BatterySoC)
	}
	tw.Flush()
	fmt.Printf("\nallocator=%s racks=%d epochs=%d\n", res.Allocator, len(res.Racks), len(res.Site))
	fmt.Printf("fleet perf=%.0f (scarce %.0f)  mean EPU=%.3f  grid=%.0f Wh  battery cycles=%d\n",
		res.TotalPerf(), res.TotalPerfScarce(), res.MeanEPU(), res.TotalGridWh(), res.BatteryCycles)
	for _, r := range res.Racks {
		fmt.Printf("  %-16s perf=%.0f  EPU=%.3f  grid=%.0f Wh\n",
			r.Name, r.Result.MeanPerf(), r.Result.MeanEPU(), r.Result.GridEnergyWh())
	}
}

func runCompare(cfg sim.Config, parallel int) error {
	results, err := sim.CompareParallel(cfg, policy.All(), parallel)
	if err != nil {
		return err
	}
	base := results["Uniform"]
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tmean perf\tvs Uniform\tscarce perf\tvs Uniform\tmean EPU\tgrid (Wh)")
	for _, p := range policy.All() {
		r := results[p.Name()]
		fmt.Fprintf(tw, "%s\t%.0f\t%.2fx\t%.0f\t%.2fx\t%.3f\t%.0f\n",
			p.Name(), r.MeanPerf(), ratio(r.MeanPerf(), base.MeanPerf()),
			r.MeanPerfScarce(), ratio(r.MeanPerfScarce(), base.MeanPerfScarce()),
			r.MeanEPU(), r.GridEnergyWh())
	}
	return tw.Flush()
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
