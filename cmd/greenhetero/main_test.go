package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefaults(t *testing.T) {
	if err := run([]string{"-epochs", "8"}); err != nil {
		t.Fatalf("default run: %v", err)
	}
}

func TestRunCompare(t *testing.T) {
	if err := run([]string{"-compare", "-epochs", "8"}); err != nil {
		t.Fatalf("compare run: %v", err)
	}
}

func TestRunLowTraceGPUCombo(t *testing.T) {
	if err := run([]string{"-combo", "Comb6", "-workload", "srad_v1", "-trace", "low", "-epochs", "8"}); err != nil {
		t.Fatalf("comb6 run: %v", err)
	}
}

func TestRunCSVExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.csv")
	if err := run([]string{"-epochs", "8", "-csv", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "epoch,case") {
		t.Errorf("csv starts %q", string(data[:20]))
	}
	if lines := strings.Count(string(data), "\n"); lines != 9 {
		t.Errorf("csv lines = %d, want 9", lines)
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"bad combo", []string{"-combo", "Comb9"}},
		{"bad workload", []string{"-workload", "doom"}},
		{"bad policy", []string{"-policy", "Oracle"}},
		{"bad trace", []string{"-trace", "wind"}},
		{"bad epochs", []string{"-epochs", "0"}},
		{"bad flag", []string{"-nope"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Errorf("run(%v) should error", tt.args)
			}
		})
	}
}

func TestRatioHelper(t *testing.T) {
	if ratio(6, 3) != 2 || ratio(1, 0) != 0 {
		t.Error("ratio helper broken")
	}
}

func TestRunFleet(t *testing.T) {
	if err := run([]string{"-fleet", "4", "-epochs", "8"}); err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	if err := run([]string{"-fleet", "3", "-alloc", "demand-proportional", "-site-grid", "2400", "-epochs", "8"}); err != nil {
		t.Fatalf("fleet demand run: %v", err)
	}
	if err := run([]string{"-fleet", "2", "-alloc", "nope", "-epochs", "8"}); err == nil {
		t.Error("unknown allocator should error")
	}
	if err := run([]string{"-fleet", "2", "-compare", "-epochs", "8"}); err == nil {
		t.Error("-fleet with -compare should error")
	}
}

func TestRunFleetScenarioFile(t *testing.T) {
	doc := `{
  "name": "cli-fleet",
  "solar": {"profile": "high", "peakWatts": 9000, "days": 1, "seed": 2},
  "epochs": 12,
  "seed": 7,
  "fleet": {
    "allocator": "hierarchical-par",
    "siteGridBudgetW": 4000,
    "racks": [
      {"name": "web", "count": 2, "policy": "GreenHetero",
       "groups": [{"server": "e5-2620", "count": 5, "workload": "specjbb"}]},
      {"name": "batch", "policy": "GreenHetero",
       "groups": [{"server": "i5-4460", "count": 8, "workload": "canneal"}]}
    ]
  }
}`
	path := filepath.Join(t.TempDir(), "fleet.json")
	if err := os.WriteFile(path, []byte(doc), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", path, "-every", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", path, "-compare"}); err == nil {
		t.Error("fleet scenario with -compare should error")
	}
}

func TestRunScenarioFile(t *testing.T) {
	doc := `{
  "name": "cli-scenario",
  "groups": [
    {"server": "e5-2620", "count": 5, "workload": "specjbb"},
    {"server": "i5-4460", "count": 5, "workload": "memcached"}
  ],
  "policy": "GreenHetero",
  "solar": {"profile": "low", "peakWatts": 2000, "days": 1, "seed": 2},
  "epochs": 12,
  "gridBudgetW": 800
}`
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, []byte(doc), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", path, "-every", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", path, "-compare"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", "/nonexistent.json"}); err == nil {
		t.Error("missing scenario should error")
	}
}
