// Command ghtrace generates and inspects the synthetic solar traces that
// stand in for the paper's NREL irradiance data.
//
// Usage:
//
//	ghtrace gen  [-profile high|low] [-peak 2200] [-days 7] [-seed 1] [-out trace.csv]
//	ghtrace info [-step 15m] trace.csv
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"greenhetero/internal/solar"
	"greenhetero/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ghtrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return errors.New("usage: ghtrace gen|info [flags]")
	}
	switch args[0] {
	case "gen":
		return runGen(args[1:])
	case "info":
		return runInfo(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want gen or info)", args[0])
	}
}

func runGen(args []string) error {
	fs := flag.NewFlagSet("ghtrace gen", flag.ContinueOnError)
	profileFlag := fs.String("profile", "high", "generation profile: high or low")
	peak := fs.Float64("peak", 2200, "PV array peak output (W)")
	days := fs.Int("days", 7, "trace length in days")
	seed := fs.Int64("seed", 1, "weather seed")
	out := fs.String("out", "", "output CSV path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	profile, err := solar.ParseProfile(*profileFlag)
	if err != nil {
		return err
	}
	tr, err := solar.Generate(solar.Config{
		Profile:   profile,
		PeakWatts: *peak,
		Days:      *days,
		Step:      15 * time.Minute,
		Seed:      *seed,
	})
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return tr.WriteCSV(w)
}

func runInfo(args []string) error {
	fs := flag.NewFlagSet("ghtrace info", flag.ContinueOnError)
	step := fs.Duration("step", 15*time.Minute, "sampling step of the CSV")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("usage: ghtrace info [-step 15m] trace.csv")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.ReadCSV(f, fs.Arg(0), *step)
	if err != nil {
		return err
	}
	stats, err := tr.Summarize()
	if err != nil {
		return err
	}
	fmt.Printf("samples: %d  span: %v  start: %s\n", tr.Len(), tr.Duration(), tr.Start.Format(time.RFC3339))
	fmt.Printf("min: %.1f W  max: %.1f W  mean: %.1f W\n", stats.Min, stats.Max, stats.Mean)
	var wh float64
	for _, v := range tr.Values {
		wh += v * tr.Step.Hours()
	}
	fmt.Printf("energy: %.0f Wh (%.2f kWh/day)\n", wh, wh/1000/(tr.Duration().Hours()/24))
	return nil
}
