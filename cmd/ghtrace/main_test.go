package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenAndInfoRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	if err := run([]string{"gen", "-profile", "low", "-days", "2", "-out", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "index,timestamp,value") {
		t.Errorf("csv header = %q", strings.SplitN(string(data), "\n", 2)[0])
	}
	if err := run([]string{"info", path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"no subcommand", nil},
		{"unknown subcommand", []string{"frobnicate"}},
		{"bad profile", []string{"gen", "-profile", "wind"}},
		{"bad gen flag", []string{"gen", "-days", "x"}},
		{"info missing file", []string{"info", "/nonexistent/trace.csv"}},
		{"info no args", []string{"info"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Errorf("run(%v) should error", tt.args)
			}
		})
	}
}
