package greenhetero

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCatalogAccessors(t *testing.T) {
	if got := len(Servers()); got != 6 {
		t.Errorf("Servers() = %d, want 6", got)
	}
	if got := len(Workloads()); got != 16 {
		t.Errorf("Workloads() = %d, want 16", got)
	}
	s, err := LookupServer(XeonE52620)
	if err != nil || s.Model != "Xeon E5-2620" {
		t.Errorf("LookupServer = %+v, %v", s, err)
	}
	if _, err := LookupServer("vax"); err == nil {
		t.Error("unknown server should error")
	}
	w, err := LookupWorkload(SPECjbb)
	if err != nil || w.Name != "SPECjbb" {
		t.Errorf("LookupWorkload = %+v, %v", w, err)
	}
	if _, err := LookupWorkload("doom"); err == nil {
		t.Error("unknown workload should error")
	}
}

func TestMustWorkloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustWorkload on unknown id should panic")
		}
	}()
	MustWorkload("doom")
}

func TestNewComb1Rack(t *testing.T) {
	rack, err := NewComb1Rack()
	if err != nil {
		t.Fatal(err)
	}
	if rack.Servers() != 10 || rack.NumGroups() != 2 {
		t.Errorf("rack = %d servers, %d groups", rack.Servers(), rack.NumGroups())
	}
}

func TestPoliciesAndLookup(t *testing.T) {
	if got := len(Policies()); got != 5 {
		t.Errorf("Policies() = %d, want 5", got)
	}
	p, err := PolicyByName("GreenHetero")
	if err != nil || p.Name() != "GreenHetero" {
		t.Errorf("PolicyByName = %v, %v", p, err)
	}
	if GreenHetero().Name() != "GreenHetero" || UniformPolicy().Name() != "Uniform" {
		t.Error("policy constructors mislabeled")
	}
}

func TestSolarConstructors(t *testing.T) {
	hi, err := SolarHigh(2000)
	if err != nil || hi.Len() != 7*96 {
		t.Errorf("SolarHigh: %v len %d", err, hi.Len())
	}
	lo, err := SolarLow(2000)
	if err != nil || lo.Len() != 7*96 {
		t.Errorf("SolarLow: %v len %d", err, lo.Len())
	}
}

func TestDefaultBattery(t *testing.T) {
	b := DefaultBattery()
	if b.CapacityWh != 12000 || b.DepthOfDischarge != 0.40 || b.Efficiency != 0.80 {
		t.Errorf("DefaultBattery = %+v", b)
	}
}

// TestPublicAPIEndToEnd drives the README quick-start flow.
func TestPublicAPIEndToEnd(t *testing.T) {
	rack, err := NewComb1Rack()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := SolarHigh(2200)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SimConfig{
		Rack:        rack,
		Workload:    MustWorkload(SPECjbb),
		Solar:       tr,
		Epochs:      48,
		GridBudgetW: 1000,
		Seed:        7,
	}
	results, err := ComparePolicies(cfg, []Policy{UniformPolicy(), GreenHetero()})
	if err != nil {
		t.Fatal(err)
	}
	uni, gh := results["Uniform"], results["GreenHetero"]
	if gh.MeanPerf() <= uni.MeanPerf() {
		t.Errorf("GreenHetero (%v) should beat Uniform (%v)", gh.MeanPerf(), uni.MeanPerf())
	}

	cfg.Policy = GreenHetero()
	single, err := RunSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(single.Epochs) != 48 {
		t.Errorf("epochs = %d", len(single.Epochs))
	}
}

func TestExperimentsFacade(t *testing.T) {
	ids := Experiments()
	if len(ids) != 19 {
		t.Fatalf("Experiments() = %v", ids)
	}
	tbl, err := RunExperiment("tab2", ExperimentOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ID != "tab2" || len(tbl.Rows) != 6 {
		t.Errorf("tab2 = %+v", tbl)
	}
	if _, err := RunExperiment("fig99", ExperimentOptions{}); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestLoadScenarioFacade(t *testing.T) {
	doc := `{
  "name": "facade",
  "groups": [{"server": "e5-2620", "count": 5, "workload": "specjbb"}],
  "policy": "GreenHetero",
  "solar": {"profile": "high", "peakWatts": 1500, "days": 1, "seed": 1},
  "epochs": 8,
  "gridBudgetW": 500
}`
	path := filepath.Join(t.TempDir(), "s.json")
	if err := os.WriteFile(path, []byte(doc), 0o600); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 8 {
		t.Errorf("epochs = %d", len(res.Epochs))
	}
	if _, err := LoadScenario("/nonexistent.json"); err == nil {
		t.Error("missing scenario should error")
	}
}
