// Quickstart: simulate one day of a heterogeneous rack on solar power
// and compare GreenHetero against the heterogeneity-oblivious Uniform
// baseline using the public API.
package main

import (
	"fmt"
	"log"

	"greenhetero"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The paper's default rack: 5× Xeon E5-2620 + 5× Core i5-4460.
	rack, err := greenhetero.NewComb1Rack()
	if err != nil {
		return err
	}
	// One week of clear-sky PV generation at 15-minute resolution.
	tr, err := greenhetero.SolarHigh(2200)
	if err != nil {
		return err
	}

	cfg := greenhetero.SimConfig{
		Rack:        rack,
		Workload:    greenhetero.MustWorkload(greenhetero.SPECjbb),
		Solar:       tr,
		Epochs:      96, // 24 hours of 15-minute scheduling epochs
		GridBudgetW: 1000,
		Seed:        7,
	}
	results, err := greenhetero.ComparePolicies(cfg, []greenhetero.Policy{
		greenhetero.UniformPolicy(),
		greenhetero.GreenHetero(),
	})
	if err != nil {
		return err
	}

	uni, gh := results["Uniform"], results["GreenHetero"]
	fmt.Printf("rack: %s (%d servers, %.0f W peak)\n", rack.Name(), rack.Servers(), rack.PeakW())
	fmt.Printf("Uniform:     mean throughput %8.0f jops   EPU %.3f\n", uni.MeanPerf(), uni.MeanEPU())
	fmt.Printf("GreenHetero: mean throughput %8.0f jops   EPU %.3f\n", gh.MeanPerf(), gh.MeanEPU())
	fmt.Printf("gain: %.2fx overall, %.2fx when renewable power is insufficient\n",
		gh.MeanPerf()/uni.MeanPerf(), gh.MeanPerfScarce()/uni.MeanPerfScarce())
	return nil
}
