// Gpucluster reproduces the paper's Comb6 scenario (Fig. 14): a rack
// mixing Xeon E5-2620 CPU servers with Nvidia Titan Xp GPU servers,
// running the Rodinia heterogeneous-computing workloads under scarce
// renewable power. Heterogeneity-aware allocation shines here: a uniform
// split starves the GPUs below their 149 W idle floor, wasting the power
// entirely, while GreenHetero concentrates it where throughput per watt
// is highest.
package main

import (
	"fmt"
	"log"
	"time"

	"greenhetero"
	"greenhetero/internal/sim"
	"greenhetero/internal/trace"
	"greenhetero/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cpu, err := greenhetero.LookupServer(greenhetero.XeonE52620)
	if err != nil {
		return err
	}
	gpu, err := greenhetero.LookupServer(greenhetero.TitanXp)
	if err != nil {
		return err
	}
	rack, err := greenhetero.NewRack("comb6",
		greenhetero.ServerGroup{Spec: cpu, Count: 5},
		greenhetero.ServerGroup{Spec: gpu, Count: 5})
	if err != nil {
		return err
	}

	// Scarce supply: 45–75 % of the rack's scale, batteries drained.
	var vals []float64
	for _, f := range []float64{0.45, 0.55, 0.65, 0.75} {
		for i := 0; i < 6; i++ {
			vals = append(vals, f*rack.PeakW()*0.85)
		}
	}
	tr, err := trace.New("scarce", time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC), 15*time.Minute, vals)
	if err != nil {
		return err
	}

	fmt.Printf("rack: 5x %s + 5x %s\n\n", cpu.Model, gpu.Model)
	fmt.Println("workload                  Uniform perf  GreenHetero perf  gain")
	for _, w := range workload.Comb6Set() {
		cfg := greenhetero.SimConfig{
			Rack:        rack,
			Workload:    w,
			Solar:       tr,
			Epochs:      tr.Len(),
			GridBudgetW: 0,
			InitialSoC:  0.6,
			Seed:        7,
			Intensity:   sim.ConstantIntensity(1),
		}
		results, err := greenhetero.ComparePolicies(cfg, []greenhetero.Policy{
			greenhetero.UniformPolicy(),
			greenhetero.GreenHetero(),
		})
		if err != nil {
			return err
		}
		uni := results["Uniform"].MeanPerfScarce()
		gh := results["GreenHetero"].MeanPerfScarce()
		fmt.Printf("%-24s  %12.0f  %16.0f  %.2fx\n", w.Name, uni, gh, gh/uni)
	}
	fmt.Println("\npaper shape: Srad_v1 dominates (up to 4.6x), Cfd smallest (CPU ≈ GPU)")
	return nil
}
