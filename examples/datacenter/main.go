// Datacenter scales GreenHetero from one rack to a small green
// datacenter: three heterogeneous racks — a Xeon/i5 SPECjbb rack, a
// small-server Canneal rack, and a CPU+GPU Srad_v1 rack — share one site
// PV plant, one site battery bank, and one site grid budget under the
// per-epoch fleet coordinator. Each rack runs its own controller (the
// paper's distributed rack-level deployment, §IV-A); the cross-rack
// decision is how the site supply is divided each epoch, and
// heterogeneity-awareness pays there too.
package main

import (
	"fmt"
	"log"

	"greenhetero"
	"greenhetero/internal/cluster"
	"greenhetero/internal/policy"
	"greenhetero/internal/solar"
	"greenhetero/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tr, err := solar.DefaultHigh(4200)
	if err != nil {
		return err
	}

	buildRacks := func(p func() policy.Policy) ([]cluster.RackConfig, error) {
		rackA, err := greenhetero.NewComb1Rack()
		if err != nil {
			return nil, err
		}
		small, err := greenhetero.LookupServer(greenhetero.XeonE52603)
		if err != nil {
			return nil, err
		}
		i5, err := greenhetero.LookupServer(greenhetero.CoreI54460)
		if err != nil {
			return nil, err
		}
		rackB, err := greenhetero.NewRack("rack-b",
			greenhetero.ServerGroup{Spec: small, Count: 5},
			greenhetero.ServerGroup{Spec: i5, Count: 5})
		if err != nil {
			return nil, err
		}
		cpu, err := greenhetero.LookupServer(greenhetero.XeonE52620)
		if err != nil {
			return nil, err
		}
		gpu, err := greenhetero.LookupServer(greenhetero.TitanXp)
		if err != nil {
			return nil, err
		}
		rackC, err := greenhetero.NewRack("rack-c",
			greenhetero.ServerGroup{Spec: cpu, Count: 5},
			greenhetero.ServerGroup{Spec: gpu, Count: 5})
		if err != nil {
			return nil, err
		}
		return []cluster.RackConfig{
			{Rack: rackA, Workload: greenhetero.MustWorkload(workload.SPECjbb), Policy: p()},
			{Rack: rackB, Workload: greenhetero.MustWorkload(workload.Canneal), Policy: p()},
			{Rack: rackC, Workload: greenhetero.MustWorkload(workload.SradV1), Policy: p()},
		}, nil
	}

	fmt.Println("deployment                          site throughput   mean EPU")
	var base float64
	for _, v := range []struct {
		name   string
		alloc  cluster.Allocator
		policy func() policy.Policy
	}{
		{"uniform split, Uniform racks", cluster.Uniform{}, func() policy.Policy { return policy.Uniform{} }},
		{"uniform split, GreenHetero racks", cluster.Uniform{}, func() policy.Policy { return policy.Solver{Adaptive: true} }},
		{"demand split, GreenHetero racks", cluster.DemandProportional{}, func() policy.Policy { return policy.Solver{Adaptive: true} }},
		{"water-fill, GreenHetero racks", cluster.HierarchicalPAR{}, func() policy.Policy { return policy.Solver{Adaptive: true} }},
	} {
		racks, err := buildRacks(v.policy)
		if err != nil {
			return err
		}
		res, err := cluster.Run(cluster.Config{
			Racks:           racks,
			Solar:           tr,
			Allocator:       v.alloc,
			SiteGridBudgetW: 2500,
			Epochs:          96,
			Seed:            7,
		})
		if err != nil {
			return err
		}
		if base == 0 {
			base = res.TotalPerf()
		}
		fmt.Printf("%-35s  %9.0f (%.2fx)   %.3f\n", v.name, res.TotalPerf(), res.TotalPerf()/base, res.MeanEPU())
	}
	fmt.Println("\nheterogeneity-awareness compounds: within each rack, and in how the site splits its supply")
	return nil
}
