// Rackday replays the paper's Fig. 8 scenario: a 24-hour SPECjbb run on
// the Comb1 rack under the High solar trace, printing the hour-by-hour
// source selection, power allocation ratio, and battery/grid activity.
package main

import (
	"fmt"
	"log"

	"greenhetero"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rack, err := greenhetero.NewComb1Rack()
	if err != nil {
		return err
	}
	tr, err := greenhetero.SolarHigh(2200)
	if err != nil {
		return err
	}
	res, err := greenhetero.RunSimulation(greenhetero.SimConfig{
		Rack:        rack,
		Workload:    greenhetero.MustWorkload(greenhetero.SPECjbb),
		Policy:      greenhetero.GreenHetero(),
		Solar:       tr,
		Epochs:      96,
		GridBudgetW: 1000,
		Seed:        7,
	})
	if err != nil {
		return err
	}

	fmt.Println("hour  case  renewable  supply   PAR   batt-out  batt-in  grid   SoC")
	for i, e := range res.Epochs {
		if i%4 != 0 { // hourly
			continue
		}
		par := 0.0
		var sum float64
		for _, f := range e.Fractions {
			sum += f
		}
		if sum > 0 {
			par = e.Fractions[0] / sum
		}
		fmt.Printf("%4.0f  %-4s  %8.0fW  %5.0fW  %4.0f%%  %7.0fW  %6.0fW  %4.0fW  %3.0f%%\n",
			float64(i)/4, e.Case, e.RenewableW, e.SupplyW, par*100,
			e.BatteryOutW, e.BatteryInW, e.GridW, e.BatterySoC*100)
	}
	fmt.Printf("\nmean PAR %.0f%% — the scheduler continuously re-balances as supply varies (paper: ≈58%%)\n",
		res.MeanPAR()*100)
	fmt.Printf("grid energy %.1f kWh, mean EPU %.3f\n", res.GridEnergyWh()/1000, res.MeanEPU())
	return nil
}
