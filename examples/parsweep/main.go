// Parsweep reproduces the paper's §III-B motivating case study (Fig. 3):
// two heterogeneous servers share a fixed 220 W budget running SPECjbb,
// and the power allocation ratio (PAR) is swept from 35 % to 100 %.
// A uniform 50/50 split leaves throughput and effective power
// utilization on the table; the optimum sits near 65 %.
package main

import (
	"fmt"
	"log"
	"strings"

	"greenhetero"
	"greenhetero/internal/metrics"
	"greenhetero/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const budgetW = 220.0
	a, err := greenhetero.LookupServer(greenhetero.XeonE52620)
	if err != nil {
		return err
	}
	b, err := greenhetero.LookupServer(greenhetero.CoreI54460)
	if err != nil {
		return err
	}
	w := greenhetero.MustWorkload(greenhetero.SPECjbb)

	fmt.Printf("server A: %s (SPECjbb demand %.0f W)\n", a.Model, workload.PeakEffW(a, w))
	fmt.Printf("server B: %s (SPECjbb demand %.0f W)\n", b.Model, workload.PeakEffW(b, w))
	fmt.Printf("shared budget: %.0f W\n\n", budgetW)

	perfAt := func(par float64) (float64, float64) {
		pa, pb := par*budgetW, (1-par)*budgetW
		perf := workload.Perf(a, w, pa) + workload.Perf(b, w, pb)
		used := workload.UsedPowerW(a, w, pa) + workload.UsedPowerW(b, w, pb)
		return perf, metrics.EPU(used, budgetW)
	}
	base, _ := perfAt(0.50)

	fmt.Println("PAR->A   EPU    perf vs 50/50")
	for par := 0.35; par <= 1.0001; par += 0.05 {
		perf, epu := perfAt(par)
		bar := strings.Repeat("#", int(perf/base*20))
		fmt.Printf("%5.0f%%  %5.2f  %5.2fx %s\n", par*100, epu, perf/base, bar)
	}
	fmt.Println("\npaper: optimum ≈65% with ≈1.5x the uniform throughput and EPU → 1.0")
	return nil
}
