// Livetelemetry runs the GreenHetero control loop over the network — the
// deployment shape of Fig. 4, end to end. Each server is a TCP agent
// (internal/livenode) that accepts SPC power budgets and reports meter
// readings; the rack controller trains its database through the wire,
// allocates each epoch, enforces the PAR via "set" commands, and feeds
// sampled readings back into the database. On real hardware the agent
// would wrap cpufreq and a power meter; everything else stays identical.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"greenhetero"
	"greenhetero/internal/battery"
	"greenhetero/internal/core"
	"greenhetero/internal/fit"
	"greenhetero/internal/livenode"
	"greenhetero/internal/policy"
	"greenhetero/internal/profiledb"
	"greenhetero/internal/telemetry"
	"greenhetero/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rack, err := greenhetero.NewComb1Rack()
	if err != nil {
		return err
	}
	w := greenhetero.MustWorkload(greenhetero.SPECjbb)

	// One agent per server, each backed by a node-local control loop.
	groupAddrs := make(map[string][]string)
	var agents []*telemetry.Agent
	defer func() {
		for _, a := range agents {
			if err := a.Close(); err != nil {
				log.Printf("close agent: %v", err)
			}
		}
	}()
	for gi, g := range rack.Groups() {
		for i := 0; i < g.Count; i++ {
			node, err := livenode.NewNode(fmt.Sprintf("%s/%d", g.Spec.ID, i), g.Spec, w, int64(gi*100+i))
			if err != nil {
				return err
			}
			a, err := telemetry.NewAgent("127.0.0.1:0", node)
			if err != nil {
				return err
			}
			agents = append(agents, a)
			groupAddrs[g.Spec.ID] = append(groupAddrs[g.Spec.ID], a.Addr())
		}
	}
	fmt.Printf("started %d node agents across %d groups\n", len(agents), len(groupAddrs))

	bank, err := battery.New(greenhetero.DefaultBattery())
	if err != nil {
		return err
	}
	// Start with a drained bank and a tight grid feed so the morning is
	// genuinely scarce — the regime where the PAR matters.
	if err := bank.SetSoC(0.6); err != nil {
		return err
	}
	db := profiledb.New()
	ctrl, err := greenhetero.NewController(core.Config{
		Rack:        rack,
		DB:          db,
		Policy:      policy.Solver{Adaptive: true},
		Battery:     bank,
		GridBudgetW: 700,
		Epoch:       15 * time.Minute,
		Prober:      &livenode.Prober{GroupAddrs: groupAddrs, Retry: telemetry.RetryPolicy{Attempts: 3, Seed: 42}},
	})
	if err != nil {
		return err
	}

	// Flatten the address list for the Monitor's epoch sweep. The
	// collector keeps one persistent connection per agent, retries with
	// seeded backoff, and trips a per-agent breaker on repeated failure;
	// a failed minority is served from last-known-good readings (Stale).
	var all []string
	for _, as := range groupAddrs {
		all = append(all, as...)
	}
	collector, err := telemetry.NewCollector(all,
		telemetry.WithRetry(telemetry.RetryPolicy{Attempts: 3, Seed: 42}),
		telemetry.WithBreaker(telemetry.BreakerConfig{FailureThreshold: 5, CooldownEpochs: 2}))
	if err != nil {
		return err
	}
	defer collector.Close()

	ctx := context.Background()
	var demand float64
	for _, g := range rack.Groups() {
		demand += float64(g.Count) * workload.PeakEffW(g.Spec, w)
	}
	renewables := []float64{0, 300, 600, 900, 700, 400} // a morning's ramp

	fmt.Println("\nepoch  case  supply(W)  PAR    rack draw(W)  rack perf  stale")
	degraded := false // did last epoch's collection serve stale readings?
	staleTotal := 0
	for epoch, ren := range renewables {
		dec, err := ctrl.StepObserved(core.Observation{RenewableW: ren, DemandW: demand, Stale: degraded}, w)
		if err != nil {
			return err
		}
		// Enforce the SPC decision over the wire.
		targets := make([]livenode.InstructionTarget, 0, len(dec.Instructions))
		for _, ins := range dec.Instructions {
			targets = append(targets, livenode.InstructionTarget{ServerID: ins.ServerID, TargetW: ins.TargetW})
		}
		if err := livenode.Enforce(ctx, groupAddrs, targets, 2*time.Second); err != nil {
			return err
		}
		// Monitor: gather meter readings, feed the database.
		results, err := collector.Collect(ctx)
		if err != nil {
			return err
		}
		var drawW, perf float64
		staleEpoch := 0
		feedback := map[int][]fit.Sample{}
		groupIdx := indexAddrs(rack, groupAddrs)
		for _, r := range results {
			if r.Err != nil {
				log.Printf("sensor %s: %v", r.Addr, r.Err)
				continue
			}
			drawW += r.Reading.PowerW
			perf += r.Reading.Perf
			if r.Stale {
				// Last-known-good readings keep the aggregates meaningful
				// but are replays, not measurements: never feed them back
				// into the database.
				staleEpoch++
				continue
			}
			if gi, ok := groupIdx[r.Addr]; ok && r.Reading.PowerW > 0 {
				feedback[gi] = append(feedback[gi], fit.Sample{X: r.Reading.PowerW, Y: r.Reading.Perf})
			}
		}
		degraded = staleEpoch > 0
		staleTotal += staleEpoch
		if err := ctrl.Feedback(w, feedback); err != nil {
			return err
		}
		par := 0.0
		var sum float64
		for _, f := range dec.Fractions {
			sum += f
		}
		if sum > 0 {
			par = dec.Fractions[0] / sum
		}
		fmt.Printf("%5d  %-4s  %9.0f  %.2f   %12.0f  %9.0f  %5d\n",
			epoch, dec.Case, dec.SupplyW, par, drawW, perf, staleEpoch)
	}
	fmt.Printf("\ndatabase holds %d (config, workload) projections, trained and refined over TCP\n", db.Len())
	fmt.Printf("stale readings served: %d", staleTotal)
	open := 0
	for _, h := range collector.Health() {
		if h.State != telemetry.BreakerClosed {
			open++
		}
	}
	fmt.Printf("; agents with tripped breakers: %d\n", open)
	return nil
}

// indexAddrs maps each agent address back to its rack group index.
func indexAddrs(rack *greenhetero.Rack, groupAddrs map[string][]string) map[string]int {
	out := make(map[string]int)
	for gi, g := range rack.Groups() {
		for _, addr := range groupAddrs[g.Spec.ID] {
			out[addr] = gi
		}
	}
	return out
}
